// Command benchjson converts `go test -bench` output on stdin into a
// JSON document on stdout, for machine-readable benchmark tracking
// (BENCH_simulate.json in CI).
//
// It can also act as an allocation gate:
//
//	go test -bench . -benchmem | benchjson -require-zero-alloc BenchmarkStep
//
// exits non-zero if any benchmark whose name starts with the given
// prefix reports more than zero allocs/op — the enforcement point for
// the simulator's allocation-free Step guarantee.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if absent).
	Procs int `json:"procs"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair (ns/op, B/op,
	// allocs/op, and any custom b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics"`
}

// Document is the emitted JSON shape.
type Document struct {
	// CPU and Package echo the bench header lines when present.
	CPU     string `json:"cpu,omitempty"`
	Package string `json:"package,omitempty"`
	// Results are the parsed benchmark lines in input order.
	Results []Result `json:"results"`
}

func main() {
	requireZero := flag.String("require-zero-alloc", "", "fail if benchmarks with this name prefix report allocs/op > 0")
	flag.Parse()
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	if *requireZero == "" {
		return
	}
	gated := 0
	for _, r := range doc.Results {
		if !strings.HasPrefix(r.Name, *requireZero) {
			continue
		}
		gated++
		allocs, ok := r.Metrics["allocs/op"]
		if !ok {
			// Without -benchmem the metric is absent; a gate that cannot
			// see allocations must fail, not pass vacuously.
			fmt.Fprintf(os.Stderr, "benchjson: %s has no allocs/op metric (was -benchmem passed?)\n", r.Name)
			os.Exit(1)
		}
		if allocs > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %s reports %v allocs/op, want 0\n", r.Name, allocs)
			os.Exit(1)
		}
	}
	if gated == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark matched gate prefix %q\n", *requireZero)
		os.Exit(1)
	}
}

// parse consumes go test -bench output.
func parse(sc *bufio.Scanner) (Document, error) {
	var doc Document
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // not a results line (e.g. a benchmark log print)
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name, procs := splitProcs(fields[0])
		r := Result{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return doc, fmt.Errorf("bad metric value %q in %q", fields[i], line)
			}
			r.Metrics[fields[i+1]] = v
		}
		doc.Results = append(doc.Results, r)
	}
	if err := sc.Err(); err != nil {
		return doc, err
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("no benchmark result lines found")
	}
	return doc, nil
}

// splitProcs separates the -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(name string) (string, int) {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name, 1
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 1
	}
	return name[:i], n
}
