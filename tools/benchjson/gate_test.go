package main

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestZeroAllocGatesCoverHotPaths pins the CI allocation gates to the
// //nc:hotpath annotations nclint enforces: every benchmark prefix
// passed to `benchjson -require-zero-alloc` in the workflow must match
// at least one benchmark function, and every package that defines such
// a benchmark must annotate at least one //nc:hotpath function. A gate
// over a package with no annotated hot path is measuring nothing nclint
// defends; an annotation with no gate is caught the other way round by
// nclint itself. This test fails when the workflow and the annotations
// drift apart.
func TestZeroAllocGatesCoverHotPaths(t *testing.T) {
	root := moduleRoot(t)

	workflow, err := os.ReadFile(filepath.Join(root, ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatalf("reading workflow: %v", err)
	}
	gateRe := regexp.MustCompile(`-require-zero-alloc\s+(Benchmark\w*)`)
	var prefixes []string
	for _, m := range gateRe.FindAllStringSubmatch(string(workflow), -1) {
		prefixes = append(prefixes, m[1])
	}
	if len(prefixes) == 0 {
		t.Fatal("no -require-zero-alloc gates found in ci.yml; the zero-alloc contract has been dropped from CI")
	}

	benchDirs := map[string][]string{} // prefix -> package dirs defining a matching benchmark
	hotDirs := map[string]bool{}       // package dirs containing an //nc:hotpath function
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && name != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return perr
		}
		dir := filepath.Dir(path)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if strings.HasSuffix(path, "_test.go") {
				for _, p := range prefixes {
					if strings.HasPrefix(fn.Name.Name, p) {
						benchDirs[p] = append(benchDirs[p], dir)
					}
				}
			} else if hasHotPath(fn.Doc) {
				hotDirs[dir] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking module: %v", err)
	}

	for _, p := range prefixes {
		dirs := benchDirs[p]
		if len(dirs) == 0 {
			t.Errorf("CI gates %q with -require-zero-alloc but no benchmark matches that prefix", p)
			continue
		}
		for _, dir := range dedupe(dirs) {
			if !hotDirs[dir] {
				rel, _ := filepath.Rel(root, dir)
				t.Errorf("gate %q runs benchmarks in %s, but that package annotates no //nc:hotpath function: the gate measures a path nclint does not defend", p, rel)
			}
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for dir := wd; ; dir = filepath.Dir(dir) {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		if dir == filepath.Dir(dir) {
			t.Fatal("no go.mod above test directory")
		}
	}
}

func hasHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		s := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if s == "nc:hotpath" || strings.HasPrefix(s, "nc:hotpath ") {
			return true
		}
	}
	return false
}

func dedupe(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
