// Command nclint is the project's static-analysis suite: six
// analyzers that machine-check the invariants the repository
// otherwise enforces by review — hot-path allocation-freedom,
// context-bound I/O, lock and atomic discipline, metric-name hygiene,
// sentinel-error matching, and checked durability errors.
//
// Run standalone over package patterns:
//
//	go run ./tools/nclint ./...
//
// or as a go vet tool, which reuses go vet's caching and per-package
// parallelism:
//
//	go build -o /tmp/nclint ./tools/nclint
//	go vet -vettool=/tmp/nclint ./...
//
// Findings are suppressed with an `//nc:allow(<analyzer>) <reason>`
// comment on the finding's line or the line above; the reason is
// mandatory, and whole-program checks (metric catalog coverage) run
// only in standalone mode.
package main

import (
	"fmt"
	"os"

	"netcoord/tools/nclint/analyzers/checkederr"
	"netcoord/tools/nclint/analyzers/ctxio"
	"netcoord/tools/nclint/analyzers/hotpath"
	"netcoord/tools/nclint/analyzers/lockdiscipline"
	"netcoord/tools/nclint/analyzers/metricnames"
	"netcoord/tools/nclint/analyzers/sentinelerr"
	"netcoord/tools/nclint/internal/nclib"
)

// version feeds go vet's result cache; bump it whenever any
// analyzer's behavior changes or stale cached verdicts will mask new
// findings.
const version = "nclint-1.0.0"

func analyzers() []*nclib.Analyzer {
	return []*nclib.Analyzer{
		hotpath.Analyzer,
		ctxio.Analyzer,
		lockdiscipline.Analyzer,
		metricnames.Analyzer,
		sentinelerr.Analyzer,
		checkederr.Analyzer,
	}
}

func main() {
	as := analyzers()
	args := os.Args[1:]

	if len(args) == 1 && (args[0] == "-help" || args[0] == "--help" || args[0] == "help") {
		fmt.Println("nclint: netcoord's static-analysis suite")
		fmt.Println()
		for _, a := range as {
			fmt.Printf("  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Println()
		fmt.Println("usage: nclint [packages]   (standalone, defaults to ./...)")
		fmt.Println("       go vet -vettool=$(which nclint) [packages]")
		return
	}

	// go vet unit-checker protocol (-V=full, -flags, *.cfg).
	if nclib.VetMain(args, version, as) {
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := nclib.Load(nclib.LoadConfig{Patterns: patterns})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	diags, err := nclib.RunAnalyzers(prog, as)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "nclint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
