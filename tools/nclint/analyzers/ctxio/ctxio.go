// Package ctxio enforces that blocking I/O and sleeps in
// context-holding packages are cancellable. PR 7 hand-audited
// follower.go for uncancellable backoff sleeps; this analyzer makes
// the audit permanent:
//
//   - time.Sleep is banned — a sleep must be a select on a timer and
//     the context/shutdown channel, or it pins goroutines through
//     shutdown and failover;
//   - net.Dial/DialTimeout are banned — dials go through a
//     net.Dialer's DialContext so a partitioned target cannot wedge a
//     reconnect loop;
//   - http.Get/Post/Head/PostForm (package-level or on a client) are
//     banned — requests are built with http.NewRequestWithContext.
//
// A package is in scope when it imports context, net, or net/http —
// i.e. when it does the kind of work that must be cancellable.
// Example binaries (examples/...) and test files are exempt; a
// deliberate blocking call elsewhere takes //nc:allow(ctxio) <reason>.
package ctxio

import (
	"go/ast"
	"strings"

	"netcoord/tools/nclint/internal/nclib"
	"netcoord/tools/nclint/internal/ncutil"
)

var Analyzer = &nclib.Analyzer{
	Name: "ctxio",
	Doc:  "sleeps, dials and HTTP requests in context-holding packages must be cancellable",
	Run:  run,
}

// banned maps stdlib package path -> function name -> remedy.
var banned = map[string]map[string]string{
	"time": {
		"Sleep": "select on a time.Timer and the context/shutdown channel instead",
	},
	"net": {
		"Dial":        "use a net.Dialer and DialContext",
		"DialTimeout": "use a net.Dialer with Timeout and DialContext",
		"DialIP":      "use a net.Dialer and DialContext",
		"DialTCP":     "use a net.Dialer and DialContext",
		"DialUDP":     "use a net.Dialer and DialContext",
		"DialUnix":    "use a net.Dialer and DialContext",
	},
	"net/http": {
		"Get":      "build the request with http.NewRequestWithContext and use a client's Do",
		"Post":     "build the request with http.NewRequestWithContext and use a client's Do",
		"PostForm": "build the request with http.NewRequestWithContext and use a client's Do",
		"Head":     "build the request with http.NewRequestWithContext and use a client's Do",
	},
}

func run(pass *nclib.Pass) error {
	if strings.Contains(pass.Pkg.Path(), "examples/") || !inScope(pass) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ncutil.StaticCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			names, ok := banned[callee.Pkg().Path()]
			if !ok {
				return true
			}
			remedy, ok := names[callee.Name()]
			if !ok {
				return true
			}
			// Package-level Dial/Get/... or the equivalent methods on
			// http.Client; (*net.Dialer).DialContext is fine and not
			// in the table.
			if recv := ncutil.NamedRecv(callee); recv != nil && recv.Obj().Name() != "Client" {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s is not context-cancellable: %s", callee.Pkg().Name(), callee.Name(), remedy)
			return true
		})
	}
	return nil
}

// inScope reports whether the package directly imports any of the
// packages whose use implies it must be cancellation-aware.
func inScope(pass *nclib.Pass) bool {
	for _, imp := range pass.Pkg.Imports() {
		switch imp.Path() {
		case "context", "net", "net/http":
			return true
		}
	}
	return false
}
