package ctxio_test

import (
	"testing"

	"netcoord/tools/nclint/analyzers/ctxio"
	"netcoord/tools/nclint/internal/nclib/nclibtest"
)

func TestCtxio(t *testing.T) {
	nclibtest.Run(t, ctxio.Analyzer, "ctxfix", "ctxout")
}
