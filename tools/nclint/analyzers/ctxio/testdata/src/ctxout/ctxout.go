// Package ctxout imports neither context, net, nor net/http: it is
// out of ctxio's scope, and its sleep is not a finding.
package ctxout

import "time"

func Settle() {
	time.Sleep(time.Millisecond)
}
