// Package ctxfix is context-holding (it imports context and net), so
// blocking calls must be cancellable.
package ctxfix

import (
	"context"
	"net"
	"net/http"
	"time"
)

func Bad(ctx context.Context) {
	time.Sleep(time.Second)        // want `time.Sleep is not context-cancellable`
	_, _ = net.Dial("tcp", "x:80") // want `net.Dial is not context-cancellable`
	_, _ = http.Get("http://x/")   // want `http.Get is not context-cancellable`
	c := http.Client{}
	_, _ = c.Get("http://x/") // want `http.Get is not context-cancellable`
}

func Good(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", "x:80")
	if err != nil {
		return err
	}
	defer conn.Close() // fixture: ctxio does not police Close
	req, err := http.NewRequestWithContext(ctx, "GET", "http://x/", nil)
	if err != nil {
		return err
	}
	_, err = http.DefaultClient.Do(req)
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return err
}

func Allowed(ctx context.Context) {
	time.Sleep(time.Millisecond) //nc:allow(ctxio) fixture: deliberate settle delay in a test helper
}
