package metricnames_test

import (
	"testing"

	"netcoord/tools/nclint/analyzers/metricnames"
	"netcoord/tools/nclint/internal/nclib/nclibtest"
)

func TestMetricNames(t *testing.T) {
	nclibtest.Run(t, metricnames.Analyzer, "netcoord/metfix")
}
