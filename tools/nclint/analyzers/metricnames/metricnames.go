// Package metricnames keeps the telemetry namespace coherent. Every
// metric name literal that reaches a telemetry.Registry registration
// call must:
//
//   - be a compile-time constant, so the namespace is statically
//     auditable (no fmt.Sprintf'd metric names);
//   - satisfy the Prometheus naming charset — the same
//     telemetry.ValidateMetricName the runtime enforces, so the
//     analyzer and the registry can never disagree;
//   - carry the netcoord_ prefix that scopes this service's metrics;
//   - map to exactly one metric kind across the whole build (a name
//     registered as a counter in one package and a gauge in another is
//     a finding at the second site);
//   - appear in the README's metric catalog, either verbatim or under
//     a documented netcoord_foo_* wildcard (whole-program check,
//     standalone driver only).
//
// Label keys in telemetry.Labels literals are validated the same way
// via telemetry.ValidateLabelName.
package metricnames

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"netcoord/internal/telemetry"
	"netcoord/tools/nclint/internal/nclib"
	"netcoord/tools/nclint/internal/ncutil"
)

var Analyzer = &nclib.Analyzer{
	Name:     "metricnames",
	Doc:      "metric names must be constant, valid, netcoord_-prefixed, kind-unique across the build, and cataloged in README",
	Run:      run,
	Finalize: finalize,
}

// telemetryPkg is the package whose Registry anchors the check — the
// real one in the module, the stub under testdata in fixtures (GOPATH
// layout yields the same import path).
const telemetryPkg = "netcoord/internal/telemetry"

// methodKind maps Registry method names to the metric kind they
// register. Must-variants and error-returning variants are the same
// registration.
var methodKind = map[string]string{
	"Counter":             "counter",
	"RegisterCounter":     "counter",
	"CounterFunc":         "counter",
	"RegisterCounterFunc": "counter",
	"Gauge":               "gauge",
	"RegisterGauge":       "gauge",
	"GaugeFunc":           "gauge",
	"RegisterGaugeFunc":   "gauge",
	"Histogram":           "histogram",
	"RegisterHistogram":   "histogram",
	"SummaryFunc":         "summary",
	"RegisterSummaryFunc": "summary",
}

// A decl records one registration site for the whole-program checks.
type decl struct {
	Name string
	Kind string
	Pos  token.Position
}

// declsMu guards decls, the accumulator Finalize consumes. Package
// state rather than facts because kind-uniqueness and the README
// catalog are whole-program properties, and Finalize deliberately has
// no per-package fact channel.
var (
	declsMu sync.Mutex
	decls   []decl
)

func run(pass *nclib.Pass) error {
	if pass.Pkg.Path() == telemetryPkg {
		// The registry's own forwarding wrappers (Counter →
		// RegisterCounter) pass names through parameters; the check
		// applies to the call sites that supply the literals.
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ncutil.StaticCallee(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			recv := ncutil.NamedRecv(callee)
			if recv == nil || recv.Obj().Name() != "Registry" ||
				recv.Obj().Pkg() == nil || recv.Obj().Pkg().Path() != telemetryPkg {
				return true
			}
			kind, ok := methodKind[callee.Name()]
			if !ok || len(call.Args) == 0 {
				return true
			}
			checkRegistration(pass, call, kind)
			return true
		})
	}
	checkLabelLiterals(pass)
	return nil
}

func checkRegistration(pass *nclib.Pass, call *ast.CallExpr, kind string) {
	nameArg := call.Args[0]
	tv, ok := pass.TypesInfo.Types[nameArg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		pass.Reportf(nameArg.Pos(), "metric name must be a compile-time constant string, not a computed value")
		return
	}
	name := constant.StringVal(tv.Value)
	if err := telemetry.ValidateMetricName(name); err != nil {
		pass.Reportf(nameArg.Pos(), "metric name %q: %v", name, err)
		return
	}
	if !strings.HasPrefix(name, "netcoord_") {
		pass.Reportf(nameArg.Pos(), "metric name %q lacks the netcoord_ namespace prefix", name)
		return
	}
	if pass.Allowed(nameArg.Pos()) {
		return // suppressed sites stay out of the whole-program set too
	}
	declsMu.Lock()
	decls = append(decls, decl{Name: name, Kind: kind, Pos: pass.Fset.Position(nameArg.Pos())})
	declsMu.Unlock()
}

// checkLabelLiterals validates the keys of telemetry.Labels composite
// literals anywhere in the package.
func checkLabelLiterals(pass *nclib.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok || tv.Type == nil {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok || named.Obj().Name() != "Labels" ||
				named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != telemetryPkg {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				ktv, ok := pass.TypesInfo.Types[kv.Key]
				if !ok || ktv.Value == nil || ktv.Value.Kind() != constant.String {
					continue
				}
				key := constant.StringVal(ktv.Value)
				if err := telemetry.ValidateLabelName(key); err != nil {
					pass.Reportf(kv.Key.Pos(), "label name %q: %v", key, err)
				}
			}
			return true
		})
	}
}

// finalize runs the whole-program checks: one kind per name across the
// build, and README catalog coverage.
func finalize(prog *nclib.Program, report func(nclib.Diagnostic)) {
	declsMu.Lock()
	all := decls
	decls = nil
	declsMu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})

	kinds := make(map[string]decl)
	for _, d := range all {
		first, seen := kinds[d.Name]
		if !seen {
			kinds[d.Name] = d
			continue
		}
		if first.Kind != d.Kind {
			report(nclib.Diagnostic{
				Position: d.Pos,

				Message: "metric " + d.Name + " registered as " + d.Kind +
					" here but as " + first.Kind + " at " + first.String(),
			})
		}
	}

	// README catalog coverage: module mode only. Fixture programs have
	// no ModuleDir and skip this leg.
	if prog.ModuleDir == "" {
		return
	}
	readme, err := os.ReadFile(filepath.Join(prog.ModuleDir, "README.md"))
	if err != nil {
		report(nclib.Diagnostic{

			Message: "cannot read README.md for the metric catalog check: " + err.Error(),
		})
		return
	}
	text := string(readme)
	wildcards := wildcardRe.FindAllString(text, -1)
	for _, d := range all {
		if strings.Contains(text, d.Name) || matchesWildcard(d.Name, wildcards) {
			continue
		}
		report(nclib.Diagnostic{
			Position: d.Pos,

			Message: "metric " + d.Name + " is not documented in README.md's metric catalog",
		})
	}
}

// wildcardRe finds documented metric-name prefixes like
// `netcoord_propagation_*` in README prose.
var wildcardRe = regexp.MustCompile(`netcoord_[a-z0-9_]*\*`)

func matchesWildcard(name string, wildcards []string) bool {
	for _, w := range wildcards {
		if strings.HasPrefix(name, strings.TrimSuffix(w, "*")) {
			return true
		}
	}
	return false
}

func (d decl) String() string { return d.Pos.String() }
