// Package telemetry is a fixture stub: the GOPATH layout gives it the
// same import path as the real registry, so metricnames anchors on it
// identically. Only the registration surface the fixtures exercise is
// declared.
package telemetry

type Labels map[string]string

type Registry struct{}

type Counter struct{}
type Gauge struct{}
type Histogram struct{}
type Summary struct{}

func (r *Registry) Counter(name, help string, labels Labels) *Counter     { return nil }
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge         { return nil }
func (r *Registry) Histogram(name, help string, labels Labels, scale float64) *Histogram {
	return nil
}
func (r *Registry) RegisterCounter(name, help string, labels Labels) (*Counter, error) {
	return nil, nil
}
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {}
