// Package metfix exercises metric-name validation, the netcoord_
// prefix rule, constant-ness, label hygiene, and cross-registration
// kind conflicts.
package metfix

import "netcoord/internal/telemetry"

func Register(r *telemetry.Registry, suffix string) {
	r.Counter("netcoord_requests_total", "h", nil)
	r.Counter("bad name", "h", nil)    // want `metric name "bad name": .*invalid metric name`
	r.Gauge("queue_depth", "h", nil)   // want `metric name "queue_depth" lacks the netcoord_ namespace prefix`
	r.Counter("netcoord_"+suffix, "h", nil) // want `metric name must be a compile-time constant string`
	_, _ = r.RegisterCounter("netcoord_batches_total", "h", telemetry.Labels{"shard": "0"})
	r.Gauge("netcoord_depth", "h", telemetry.Labels{"bad-label": "x"}) // want `label name "bad-label": .*invalid label name`
	r.Counter("netcoord_allowed$", "h", nil) //nc:allow(metricnames) fixture: proves suppression keeps the site out of the catalog set
}

// Conflict registers one name under two kinds; the second site is the
// finding (whole-program Finalize check).
func Conflict(r *telemetry.Registry) {
	r.Counter("netcoord_mode", "h", nil)
	r.Gauge("netcoord_mode", "h", nil) // want `metric netcoord_mode registered as gauge here but as counter at`
}
