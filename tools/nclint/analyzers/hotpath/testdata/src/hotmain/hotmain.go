// Package hotmain imports hotdep: the finding below only exists if
// hotdep's allocation summary crossed the package boundary as a fact.
package hotmain

import "hotdep"

//nc:hotpath
func Hot(n int) string { // want `hot path Hot reaches allocation: call to Describe → call to fmt.Sprintf`
	return hotdep.Describe(n)
}

//nc:hotpath
func FineViaDep(n int) int {
	return hotdep.Cheap(n)
}
