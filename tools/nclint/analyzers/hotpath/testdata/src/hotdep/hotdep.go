// Package hotdep is the dependency side of the cross-package fact
// test: it exports an allocating function whose summary must reach
// importers through facts.
package hotdep

import "fmt"

// Describe allocates; hotpath exports that as a fact.
func Describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Cheap does not allocate.
func Cheap(n int) int { return n + 1 }
