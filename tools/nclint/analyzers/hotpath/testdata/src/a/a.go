// Package a exercises hotpath's direct-site detection, local callee
// propagation, and //nc:allow suppression.
package a

import "fmt"

//nc:hotpath
func DirectAllocs() string { // want `hot path DirectAllocs reaches allocation: call to fmt.Sprintf` `hot path DirectAllocs reaches allocation: make`
	s := fmt.Sprintf("x%d", 1)
	b := make([]byte, 8)
	return s + string(b[0]) //nc:allow(hotpath) fixture: concatenation is under test elsewhere
}

//nc:hotpath
func ViaCallee() int { // want `hot path ViaCallee reaches allocation: call to helper → slice literal`
	return helper()
}

func helper() int {
	xs := []int{1, 2, 3}
	return xs[0]
}

// NotHot allocates freely: no annotation, no finding.
func NotHot() string {
	return fmt.Sprintf("%d", 2)
}

//nc:hotpath
func Suppressed() int {
	return helper() //nc:allow(hotpath) fixture: amortized setup, not per-op
}

//nc:hotpath
func Boxes(v int) { // want `hot path Boxes reaches allocation: boxing v into any \(argument to sink\)`
	sink(v)
}

func sink(any) {}

//nc:hotpath
func Spawns() { // want `hot path Spawns reaches allocation: goroutine spawn`
	go func() {}()
}
