// Package hotpath statically enforces the repository's zero-alloc
// guarantees: a function annotated //nc:hotpath must not reach a known
// allocator — not directly, and not through any project-local callee,
// across package boundaries.
//
// The analyzer computes a bottom-up allocation summary for every
// function (which allocator sites it can reach through statically
// resolvable project calls) and exports the summaries as facts; since
// packages are analyzed in dependency order, an annotated function in
// a high-level package sees the summaries of everything below it. The
// CI benchmark gates (`benchjson -require-zero-alloc`) measure the
// same property dynamically on the steady-state path; this is their
// compile-time twin, and it also covers branches a benchmark never
// takes.
//
// Known allocators: fmt.Errorf/Sprintf/Sprint/Sprintln/Append*,
// errors.New/Join at call time, strconv.Format*/Itoa/Quote,
// non-constant string concatenation, map/slice composite literals,
// make/new, taking the address of a composite literal, closures that
// capture variables, spawning goroutines, and boxing a non-pointer
// value into an interface. A genuinely cold branch inside a hot
// function (a validation failure, a once-per-process init) is
// exempted at the allocation site with //nc:allow(hotpath) <reason>;
// exempted sites never enter a summary.
//
// Calls the analyzer cannot resolve statically (function values,
// interface methods) are not followed — keep hot paths monomorphic.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"netcoord/tools/nclint/internal/nclib"
	"netcoord/tools/nclint/internal/ncutil"
)

// AllocSite is one reachable allocator, with the call chain that
// reaches it when it is not in the annotated function itself.
type AllocSite struct {
	Pos  string // file:line of the allocator
	What string // human description, including the via-chain
}

// Fact is the exported bottom-up summary of one function: the
// allocator sites it can reach. Functions with no reachable
// allocators export nothing.
type Fact struct {
	Sites []AllocSite
}

func (*Fact) AFact() {}

// maxSitesPerFunc bounds summary size (and finding noise): a function
// that allocates in forty places needs a fix, not forty findings.
const maxSitesPerFunc = 4

var Analyzer = &nclib.Analyzer{
	Name:      "hotpath",
	Doc:       "//nc:hotpath functions must not reach allocators, transitively through project calls",
	Run:       run,
	FactTypes: []nclib.Fact{(*Fact)(nil)},
}

// funcInfo is the per-function scratch state for the fixed point.
type funcInfo struct {
	obj     *types.Func
	decl    *ast.FuncDecl
	hot     bool
	direct  []AllocSite
	callees []*types.Func
}

func run(pass *nclib.Pass) error {
	infos := make(map[*types.Func]*funcInfo)
	var order []*funcInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fd, hot: ncutil.HasAnnotation(fd.Doc, "hotpath")}
			scanBody(pass, fd, fi)
			infos[obj] = fi
			order = append(order, fi)
		}
	}

	// Fixed point within the package: merge callee summaries (local
	// ones iteratively, cross-package ones from facts) into callers
	// until stable.
	summaries := make(map[*types.Func][]AllocSite, len(infos))
	for _, fi := range order {
		summaries[fi.obj] = fi.direct
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range order {
			cur := summaries[fi.obj]
			if len(cur) >= maxSitesPerFunc {
				continue
			}
			for _, callee := range fi.callees {
				var calleeSites []AllocSite
				if local, ok := infos[callee]; ok {
					calleeSites = summaries[local.obj]
				} else if pass.IsProject(callee.Pkg()) {
					var f Fact
					if pass.ImportObjectFact(callee, &f) {
						calleeSites = f.Sites
					}
				}
				for _, s := range calleeSites {
					via := AllocSite{Pos: s.Pos, What: fmt.Sprintf("call to %s → %s", callee.Name(), s.What)}
					if addSite(&cur, via) {
						changed = true
					}
					if len(cur) >= maxSitesPerFunc {
						break
					}
				}
				if len(cur) >= maxSitesPerFunc {
					break
				}
			}
			summaries[fi.obj] = cur
		}
	}

	for _, fi := range order {
		sites := summaries[fi.obj]
		if len(sites) > 0 {
			pass.ExportObjectFact(fi.obj, &Fact{Sites: sites})
		}
		if fi.hot {
			for _, s := range sites {
				pass.Reportf(fi.decl.Name.Pos(), "hot path %s reaches allocation: %s (at %s)", fi.obj.Name(), s.What, s.Pos)
			}
		}
	}
	return nil
}

// addSite appends s to *sites unless an equivalent site (same
// position) is already present or the cap is reached.
func addSite(sites *[]AllocSite, s AllocSite) bool {
	if len(*sites) >= maxSitesPerFunc {
		return false
	}
	for _, have := range *sites {
		if have.Pos == s.Pos {
			return false
		}
	}
	*sites = append(*sites, s)
	return true
}

// allocFuncs are the package-level functions treated as allocators at
// call time.
var allocFuncs = map[string]map[string]bool{
	"fmt": {"Errorf": true, "Sprintf": true, "Sprint": true, "Sprintln": true,
		"Appendf": true, "Append": true, "Appendln": true},
	"errors":  {"New": true, "Join": true},
	"strconv": {"FormatInt": true, "FormatUint": true, "FormatFloat": true, "Itoa": true, "Quote": true, "AppendQuote": true},
}

// scanBody records fd's direct allocator sites (minus //nc:allow'd
// ones) and its statically resolvable call edges.
func scanBody(pass *nclib.Pass, fd *ast.FuncDecl, fi *funcInfo) {
	info := pass.TypesInfo
	site := func(pos token.Pos, format string, args ...any) {
		if pass.Allowed(pos) {
			return
		}
		p := pass.Fset.Position(pos)
		fi.direct = append(fi.direct, AllocSite{
			Pos:  fmt.Sprintf("%s:%d", p.Filename, p.Line),
			What: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := ncutil.StaticCallee(info, n); callee != nil {
				if callee.Pkg() != nil {
					if names, ok := allocFuncs[callee.Pkg().Path()]; ok && names[callee.Name()] && ncutil.NamedRecv(callee) == nil {
						site(n.Pos(), "call to %s.%s", callee.Pkg().Name(), callee.Name())
						return true // args feed the flagged call; don't double-report boxing
					}
				}
				// An allow on the call line suppresses everything the
				// callee would contribute to this function's summary.
				if !pass.Allowed(n.Pos()) {
					fi.callees = append(fi.callees, callee)
				}
				checkCallBoxing(pass, site, n, callee)
			}
			// Builtins make/new.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						site(n.Pos(), "make")
					case "new":
						site(n.Pos(), "new")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				site(n.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info, n.Lhs[0]) {
				site(n.Pos(), "string concatenation (+=)")
			}
			checkAssignBoxing(pass, site, n)
		case *ast.CompositeLit:
			t := info.Types[n].Type
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				site(n.Pos(), "map literal")
			case *types.Slice:
				site(n.Pos(), "slice literal")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					site(n.Pos(), "address of composite literal")
				}
			}
		case *ast.GoStmt:
			site(n.Pos(), "goroutine spawn")
		case *ast.FuncLit:
			if capt := capturedVar(pass, fd, n); capt != "" && !callsDirectly(fd.Body, n) {
				site(n.Pos(), "closure captures %q", capt)
			}
			return false // closure bodies are not the hot path's own code
		case *ast.ReturnStmt:
			checkReturnBoxing(pass, site, fd, n)
		}
		return true
	})
}

func isString(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	if !isString(info, e) {
		return false
	}
	return info.Types[e].Value == nil // constant-folded concatenation is free
}

// boxes reports whether assigning from-typed value expr to an
// interface target allocates: the source is a concrete, non-pointer-
// shaped, non-constant value.
func boxes(info *types.Info, target types.Type, arg ast.Expr) bool {
	if target == nil || !types.IsInterface(target) {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil || tv.Value != nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Basic:
		switch u := tv.Type.Underlying().(type) {
		case *types.Basic:
			if u.Kind() == types.UnsafePointer {
				return false
			}
			return true // non-constant basic value boxes
		default:
			return false // pointer-shaped: fits the interface word
		}
	}
	return true // structs, arrays, slices, named aggregates box
}

func checkCallBoxing(pass *nclib.Pass, site func(token.Pos, string, ...any), call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // forwarding a slice: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pass.TypesInfo, pt, arg) {
			site(arg.Pos(), "boxing %s into %s (argument to %s)", types.ExprString(arg), pt, callee.Name())
		}
	}
}

func checkAssignBoxing(pass *nclib.Pass, site func(token.Pos, string, ...any), n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		lt := pass.TypesInfo.Types[lhs].Type
		if n.Tok == token.DEFINE {
			continue // inferred type: no conversion happens
		}
		if boxes(pass.TypesInfo, lt, n.Rhs[i]) {
			site(n.Rhs[i].Pos(), "boxing %s into %s", types.ExprString(n.Rhs[i]), lt)
		}
	}
}

func checkReturnBoxing(pass *nclib.Pass, site func(token.Pos, string, ...any), fd *ast.FuncDecl, n *ast.ReturnStmt) {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(n.Results) != results.Len() {
		return
	}
	for i, r := range n.Results {
		if boxes(pass.TypesInfo, results.At(i).Type(), r) {
			site(r.Pos(), "boxing %s into returned %s", types.ExprString(r), results.At(i).Type())
		}
	}
}

// capturedVar returns the name of a variable n captures from its
// enclosing function, or "".
func capturedVar(pass *nclib.Pass, fd *ast.FuncDecl, n *ast.FuncLit) string {
	var captured string
	ast.Inspect(n.Body, func(m ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pass.Pkg {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true // package-level: not a capture
		}
		if v.Pos() < n.Pos() || v.Pos() > n.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// callsDirectly reports whether lit only ever appears as the callee of
// an immediate call or a direct defer — forms the compiler keeps off
// the heap.
func callsDirectly(body *ast.BlockStmt, lit *ast.FuncLit) bool {
	direct := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if ast.Unparen(n.Fun) == lit {
				direct = true
			}
		case *ast.DeferStmt:
			if ast.Unparen(n.Call.Fun) == lit {
				direct = true
			}
		}
		return true
	})
	return direct
}
