package hotpath_test

import (
	"testing"

	"netcoord/tools/nclint/analyzers/hotpath"
	"netcoord/tools/nclint/internal/nclib/nclibtest"
)

func TestHotpath(t *testing.T) {
	nclibtest.Run(t, hotpath.Analyzer, "a")
}

// TestCrossPackage proves allocation summaries propagate through
// facts: hotmain's finding names a site inside hotdep.
func TestCrossPackage(t *testing.T) {
	nclibtest.Run(t, hotpath.Analyzer, "hotdep", "hotmain")
}
