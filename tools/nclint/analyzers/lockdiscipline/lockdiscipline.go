// Package lockdiscipline machine-checks the repository's
// caller-holds-the-lock convention. A function annotated
// //nc:locked(<mutex>) (the *Locked methods of the changefeed and the
// WatchHub, the registry's feed-publish helper) may only be called
// where the named lock is demonstrably held:
//
//   - the calling function contains <mutex>.Lock() before the call on
//     the lexical path to it (an Unlock on a fall-through path in
//     between revokes it; deferred Unlocks and early-return branches
//     do not), or
//   - the calling function itself carries //nc:locked(<mutex>) for
//     the same lock, pushing the obligation to its callers — this is
//     how the obligation crosses package boundaries, via facts.
//
// The annotation grammar: a bare name (//nc:locked(mu)) binds to the
// callee's receiver, so a call site f.deliverLocked(ev) requires
// f.mu; a dotted path (//nc:locked(s.mu)) matches call-site text
// literally, for locks that are not a field of the receiver.
//
// The check is lexical and lightly flow-sensitive by design — it
// cannot prove lock ownership, only that the convention is visibly
// followed. Exotic shapes earn an //nc:allow(lockdiscipline) <reason>.
//
// The analyzer also flags mixed atomic/plain access: a field that is
// anywhere passed to sync/atomic functions (atomic.AddUint64(&s.n))
// must be accessed through sync/atomic everywhere in the package —
// a plain read of such a field is a data race the race detector only
// catches when a test happens to interleave it.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"netcoord/tools/nclint/internal/nclib"
	"netcoord/tools/nclint/internal/ncutil"
)

// Fact marks a function whose callers must hold Lock.
type Fact struct {
	Lock string
}

func (*Fact) AFact() {}

var Analyzer = &nclib.Analyzer{
	Name:      "lockdiscipline",
	Doc:       "//nc:locked(mu) callees require the lock visibly held at every call site; atomic fields must not be read plainly",
	Run:       run,
	FactTypes: []nclib.Fact{(*Fact)(nil)},
}

func run(pass *nclib.Pass) error {
	// Local annotated functions, exported as facts for dependents.
	local := make(map[*types.Func]string)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if lock, ok := ncutil.LockedAnnotation(fd.Doc); ok {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					local[obj] = lock
					pass.ExportObjectFact(obj, &Fact{Lock: lock})
				}
			}
		}
	}

	lockOf := func(callee *types.Func) (string, bool) {
		if lock, ok := local[callee]; ok {
			return lock, true
		}
		if pass.IsProject(callee.Pkg()) {
			var f Fact
			if pass.ImportObjectFact(callee, &f) {
				return f.Lock, true
			}
		}
		return "", false
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCalls(pass, fd, lockOf)
		}
	}

	checkAtomicFields(pass)
	return nil
}

// checkCalls verifies every locked-callee call inside fd.
func checkCalls(pass *nclib.Pass, fd *ast.FuncDecl, lockOf func(*types.Func) (string, bool)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := ncutil.StaticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		lock, ok := lockOf(callee)
		if !ok {
			return true
		}
		required := requiredLock(call, lock)
		if required == "" {
			pass.Reportf(call.Pos(), "cannot determine the %q lock for this call to %s; name it explicitly in the annotation", lock, callee.Name())
			return true
		}
		if grantedByAnnotation(pass, fd, required) {
			return true
		}
		if lockHeldAt(fd, call, required) {
			return true
		}
		pass.Reportf(call.Pos(), "call to %s requires %s held: no %s.Lock() on the path to this call (annotate the caller //nc:locked(%s) or take the lock)",
			callee.Name(), required, required, lock)
		return true
	})
}

// requiredLock renders the lock expression the call site must hold: a
// bare annotation name binds to the call's receiver expression, a
// dotted one is literal.
func requiredLock(call *ast.CallExpr, lock string) string {
	if strings.Contains(lock, ".") {
		return lock
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X) + "." + lock
	}
	// Plain ident call to a package-level function with a bare lock
	// name: nothing to bind the receiver to.
	return ""
}

// grantedByAnnotation reports whether fd's own //nc:locked annotation
// covers required.
func grantedByAnnotation(pass *nclib.Pass, fd *ast.FuncDecl, required string) bool {
	lock, ok := ncutil.LockedAnnotation(fd.Doc)
	if !ok {
		return false
	}
	if strings.Contains(lock, ".") {
		return lock == required
	}
	// Bare name: binds to fd's receiver name.
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	return fd.Recv.List[0].Names[0].Name+"."+lock == required
}

// lockHeldAt reports whether required.Lock() is visibly held at call
// within fd: some statement before the call on its lexical path takes
// the lock, with no fall-through Unlock in between. Unlocks inside
// nested early-exit branches (containing a return) and deferred
// Unlocks do not revoke it.
func lockHeldAt(fd *ast.FuncDecl, call *ast.CallExpr, required string) bool {
	held := false
	var scanBlock func(stmts []ast.Stmt) bool // reports whether the call was reached
	scanBlock = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			if s.End() < call.Pos() {
				// Entirely before the call: update held state.
				switch st := s.(type) {
				case *ast.ExprStmt:
					if isLockCall(st.X, required, "Lock") || isLockCall(st.X, required, "RLock") {
						held = true
					}
					if isLockCall(st.X, required, "Unlock") || isLockCall(st.X, required, "RUnlock") {
						held = false
					}
				case *ast.DeferStmt:
					// Deferred unlocks run at exit: no effect here.
				default:
					if unlocksOnFallthrough(s, required) {
						held = false
					} else if containsLock(s, required) {
						// A nested conditional Lock is not proof; but a
						// nested Lock with no Unlock on a fall-through
						// path (lock-then-branch shapes) is treated as
						// held — the common `if !locked { mu.Lock() }`
						// does not occur in this codebase.
						held = true
					}
				}
				continue
			}
			if s.Pos() <= call.Pos() && call.End() <= s.End() {
				// The call is inside this statement: descend into its
				// blocks, processing any same-statement prefix first.
				for _, inner := range childBlocks(s) {
					if scanBlock(inner) {
						return true
					}
				}
				return true
			}
		}
		return false
	}
	scanBlock(fd.Body.List)
	return held
}

// childBlocks returns the statement lists nested directly in s, in
// source order.
func childBlocks(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch st := s.(type) {
	case *ast.BlockStmt:
		out = append(out, st.List)
	case *ast.IfStmt:
		out = append(out, st.Body.List)
		if st.Else != nil {
			out = append(out, childBlocks(st.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, st.Body.List)
	case *ast.RangeStmt:
		out = append(out, st.Body.List)
	case *ast.SwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, childBlocks(st.Stmt)...)
	case *ast.ExprStmt, *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.ReturnStmt:
	}
	return out
}

// isLockCall reports whether e is required.<method>().
func isLockCall(e ast.Expr, required, method string) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	return types.ExprString(sel.X) == required
}

// unlocksOnFallthrough reports whether s contains an Unlock of
// required on a path that can fall through past s — i.e. the branch
// holding the Unlock does not end in a return. Heuristic: if s
// contains an Unlock and no return statement, the unlock falls
// through.
func unlocksOnFallthrough(s ast.Stmt, required string) bool {
	unlocks, returns := false, false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if isLockCall(n.X, required, "Unlock") || isLockCall(n.X, required, "RUnlock") {
				unlocks = true
			}
		case *ast.ReturnStmt:
			returns = true
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return unlocks && !returns
}

// containsLock reports whether s contains required.Lock() anywhere
// (outside nested function literals).
func containsLock(s ast.Stmt, required string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if isLockCall(n.X, required, "Lock") || isLockCall(n.X, required, "RLock") {
				found = true
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
	return found
}

// checkAtomicFields flags plain accesses of struct fields that are
// elsewhere in the package manipulated through sync/atomic functions.
func checkAtomicFields(pass *nclib.Pass) {
	atomicFields := make(map[*types.Var]bool)
	inAtomicCall := make(map[*ast.SelectorExpr]bool)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := ncutil.StaticCallee(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(pass.TypesInfo, sel); v != nil {
					atomicFields[v] = true
					inAtomicCall[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicCall[sel] {
				return true
			}
			v := fieldOf(pass.TypesInfo, sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; plain access races — use the atomic helpers", v.Name())
			return true
		})
	}
}

// fieldOf resolves sel to the struct field it selects, if any.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
