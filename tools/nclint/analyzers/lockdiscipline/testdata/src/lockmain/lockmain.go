// Package lockmain imports lockdep: the finding below only exists if
// the //nc:locked fact crossed the package boundary.
package lockmain

import "lockdep"

func Good(b *lockdep.Box) {
	b.Mu.Lock()
	b.SetLocked(1)
	b.Mu.Unlock()
}

func Bad(b *lockdep.Box) {
	b.SetLocked(2) // want `call to SetLocked requires b.Mu held`
}
