// Package lockdep exports a locked-callee method; the obligation must
// reach importers through facts.
package lockdep

import "sync"

type Box struct {
	Mu sync.Mutex
	v  int
}

// SetLocked stores v under Mu, which the caller holds.
//
//nc:locked(Mu)
func (b *Box) SetLocked(v int) { b.v = v }
