// Package lockfix exercises the //nc:locked call-site check and the
// atomic/plain mixed-access check.
package lockfix

import (
	"sync"
	"sync/atomic"
)

type T struct {
	mu sync.Mutex
	n  int
}

// bumpLocked mutates under the caller's lock.
//
//nc:locked(mu)
func (t *T) bumpLocked() { t.n++ }

func (t *T) Good() {
	t.mu.Lock()
	t.bumpLocked()
	t.mu.Unlock()
}

func (t *T) GoodDeferred() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bumpLocked()
}

func (t *T) Bad() {
	t.bumpLocked() // want `call to bumpLocked requires t.mu held`
}

// chainLocked passes the obligation up by annotation.
//
//nc:locked(mu)
func (t *T) chainLocked() { t.bumpLocked() }

func (t *T) Revoked() {
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
	t.bumpLocked() // want `call to bumpLocked requires t.mu held`
}

func (t *T) EarlyReturnKeepsLock(b bool) {
	t.mu.Lock()
	if b {
		t.mu.Unlock()
		return
	}
	t.bumpLocked() // early-return unlock does not revoke the fall-through path
	t.mu.Unlock()
}

func (t *T) LockedInBranch(b bool) {
	t.mu.Lock()
	if b {
		t.bumpLocked() // lock taken at function level covers nested blocks
	}
	t.mu.Unlock()
}

func (t *T) AllowedCall() {
	t.bumpLocked() //nc:allow(lockdiscipline) fixture: single-threaded constructor path
}

// counters mixes atomic and plain access to exercise the second check.
type counters struct {
	hits uint64
	misc uint64
}

func (c *counters) Inc() {
	atomic.AddUint64(&c.hits, 1)
	c.misc++ // plain field, never touched atomically: fine
}

func (c *counters) Read() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere in this package`
}

func (c *counters) ReadAtomic() uint64 {
	return atomic.LoadUint64(&c.hits)
}
