package lockdiscipline_test

import (
	"testing"

	"netcoord/tools/nclint/analyzers/lockdiscipline"
	"netcoord/tools/nclint/internal/nclib/nclibtest"
)

func TestLockDiscipline(t *testing.T) {
	nclibtest.Run(t, lockdiscipline.Analyzer, "lockfix")
}

// TestCrossPackage proves //nc:locked obligations propagate through
// facts to importing packages.
func TestCrossPackage(t *testing.T) {
	nclibtest.Run(t, lockdiscipline.Analyzer, "lockdep", "lockmain")
}
