// Package sentinelerr enforces the module's error-matching contract.
// The registry, persist and changefeed packages export Err* sentinels
// that callers branch on; the contract only survives wrapping if
// everyone plays by three rules, which this analyzer machine-checks:
//
//   - comparisons against a project Err* sentinel use errors.Is, never
//     == or != — a wrapped sentinel fails == silently and the caller's
//     fallback path quietly swallows the condition;
//   - exported Err* sentinels are ==-stable: assigned once at
//     declaration and never reassigned (a reassigned sentinel breaks
//     every errors.Is already inflight);
//   - fmt.Errorf calls that include a sentinel argument wrap it with
//     %w, so the sentinel stays matchable through the wrap.
package sentinelerr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"netcoord/tools/nclint/internal/nclib"
	"netcoord/tools/nclint/internal/ncutil"
)

var Analyzer = &nclib.Analyzer{
	Name: "sentinelerr",
	Doc:  "project Err* sentinels: compare with errors.Is, never reassign, wrap with %w",
	Run:  run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *nclib.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.AssignStmt:
				checkReassignment(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// isSentinel reports whether e resolves to an exported package-level
// Err* error variable in project code.
func isSentinel(pass *nclib.Pass, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !pass.IsProject(v.Pkg()) {
		return nil
	}
	if !v.Exported() || !strings.HasPrefix(v.Name(), "Err") {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	if !types.Implements(v.Type(), errorIface) {
		return nil
	}
	return v
}

// checkComparison flags err == pkg.ErrFoo / err != pkg.ErrFoo.
func checkComparison(pass *nclib.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	v := isSentinel(pass, be.X)
	if v == nil {
		v = isSentinel(pass, be.Y)
	}
	if v == nil {
		return
	}
	pass.Reportf(be.Pos(), "comparing against %s with %s misses wrapped errors: use errors.Is(err, %s)", v.Name(), be.Op, v.Name())
}

// checkReassignment flags any assignment to an exported Err* sentinel
// outside its var declaration.
func checkReassignment(pass *nclib.Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		var id *ast.Ident
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			continue
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || !pass.IsProject(v.Pkg()) {
			continue
		}
		if !v.Exported() || !strings.HasPrefix(v.Name(), "Err") || v.Parent() != v.Pkg().Scope() {
			continue
		}
		if !types.Implements(v.Type(), errorIface) {
			continue
		}
		pass.Reportf(lhs.Pos(), "reassigning sentinel %s breaks every errors.Is match against it; sentinels are write-once", v.Name())
	}
}

// checkErrorf flags fmt.Errorf calls that pass a sentinel without a
// %w verb in the (constant) format string.
func checkErrorf(pass *nclib.Pass, call *ast.CallExpr) {
	callee := ncutil.StaticCallee(pass.TypesInfo, call)
	if !ncutil.IsPkgFunc(callee, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	var sentinel *types.Var
	for _, arg := range call.Args[1:] {
		if v := isSentinel(pass, arg); v != nil {
			sentinel = v
			break
		}
	}
	if sentinel == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return // non-constant format: nothing to prove
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	pass.Reportf(call.Pos(), "fmt.Errorf formats sentinel %s without %%w: the wrap is unmatchable by errors.Is", sentinel.Name())
}
