// Package sentfix exercises the three sentinel rules: errors.Is over
// ==, write-once sentinels, and %w-only wrapping.
package sentfix

import (
	"errors"
	"fmt"
	"io"
)

// ErrGone is an exported project sentinel; callers match it with
// errors.Is.
var ErrGone = errors.New("sentfix: gone")

// errLocal is unexported: == against it is a package-private idiom the
// analyzer leaves alone.
var errLocal = errors.New("sentfix: local")

func Compare(err error) bool {
	if err == ErrGone { // want `comparing against ErrGone with == misses wrapped errors: use errors\.Is\(err, ErrGone\)`
		return true
	}
	if err != ErrGone { // want `comparing against ErrGone with != misses wrapped errors`
		return false
	}
	if errors.Is(err, ErrGone) { // the blessed form
		return true
	}
	if err == errLocal { // unexported: out of contract
		return true
	}
	return err == io.EOF // stdlib sentinel: not ours to police
}

func Reassign() {
	ErrGone = errors.New("sentfix: replaced") // want `reassigning sentinel ErrGone breaks every errors\.Is match`
	errLocal = nil
	local := ErrGone
	_ = local
}

func Wrap(id string) error {
	if id == "" {
		return fmt.Errorf("lookup %q: %v", id, ErrGone) // want `fmt\.Errorf formats sentinel ErrGone without %w: the wrap is unmatchable by errors\.Is`
	}
	return fmt.Errorf("lookup %q: %w", id, ErrGone)
}
