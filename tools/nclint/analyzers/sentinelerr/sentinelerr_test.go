package sentinelerr_test

import (
	"testing"

	"netcoord/tools/nclint/analyzers/sentinelerr"
	"netcoord/tools/nclint/internal/nclib/nclibtest"
)

func TestSentinelErr(t *testing.T) {
	nclibtest.Run(t, sentinelerr.Analyzer, "sentfix")
}
