// Package checkederr flags silently dropped errors from the
// flush-to-durable-storage trio — Sync, Flush, Close — when called as
// a bare statement. On the persist write path a dropped fsync error
// is a durability hole: the WAL claims an entry is stable that the
// kernel never promised. The fix is to check the error, or to discard
// it visibly (`_ = f.Close()`) so review sees the decision.
//
// Deferred calls are exempt: `defer f.Close()` on read paths is
// idiomatic and the error is unreachable there anyway. Write paths
// that defer a Close still need an explicit Sync/Close check before
// returning success — which this analyzer forces to exist, because
// that check is a non-deferred call.
package checkederr

import (
	"go/ast"
	"go/types"

	"netcoord/tools/nclint/internal/nclib"
	"netcoord/tools/nclint/internal/ncutil"
)

var Analyzer = &nclib.Analyzer{
	Name: "checkederr",
	Doc:  "bare Sync/Flush/Close statements drop durability errors; check them or discard visibly with _ =",
	Run:  run,
}

var watched = map[string]bool{"Sync": true, "Flush": true, "Close": true}

func run(pass *nclib.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := resolve(pass, call)
			if callee == nil || !watched[callee.Name()] {
				return true
			}
			if !returnsOnlyError(callee) {
				return true
			}
			recv := "it"
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				recv = types.ExprString(sel.X)
			}
			pass.Reportf(call.Pos(), "%s.%s() returns an error that is silently dropped: check it, or discard visibly with `_ = %s.%s()`",
				recv, callee.Name(), recv, callee.Name())
			return true
		})
	}
	return nil
}

// resolve names the callee. Unlike hotpath, the dynamic target is
// irrelevant here — func() error through an interface drops the error
// just the same — so interface method calls resolve too.
func resolve(pass *nclib.Pass, call *ast.CallExpr) *types.Func {
	if f := ncutil.StaticCallee(pass.TypesInfo, call); f != nil {
		return f
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		f, _ := s.Obj().(*types.Func)
		return f
	}
	return nil
}

// returnsOnlyError reports whether f's signature is func(...) error.
func returnsOnlyError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
