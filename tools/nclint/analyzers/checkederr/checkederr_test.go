package checkederr_test

import (
	"testing"

	"netcoord/tools/nclint/analyzers/checkederr"
	"netcoord/tools/nclint/internal/nclib/nclibtest"
)

func TestCheckedErr(t *testing.T) {
	nclibtest.Run(t, checkederr.Analyzer, "chkfix")
}
