// Package chkfix exercises the dropped-durability-error rule on the
// Sync/Flush/Close trio.
package chkfix

import (
	"bufio"
	"io"
	"os"
)

// Journal mirrors the WAL surface: Close returns error, Stop does not.
type Journal struct{}

func (j *Journal) Close() error { return nil }
func (j *Journal) Stop()        {}

func Bare(f *os.File, w *bufio.Writer, j *Journal) {
	f.Sync()  // want `f\.Sync\(\) returns an error that is silently dropped`
	w.Flush() // want `w\.Flush\(\) returns an error that is silently dropped`
	j.Close() // want `j\.Close\(\) returns an error that is silently dropped`
}

func Checked(f *os.File, w *bufio.Writer, j *Journal) error {
	if err := w.Flush(); err != nil {
		return err
	}
	_ = f.Sync() // visible discard: reviewer sees the decision
	defer f.Close()
	j.Stop() // no error to drop
	return j.Close()
}

// CloseAll takes the interface: io.Closer's Close also returns only
// error, so the bare statement is still a finding.
func CloseAll(c io.Closer) {
	c.Close() // want `c\.Close\(\) returns an error that is silently dropped`
}
