// Package ncutil holds the small AST/type helpers shared by nclint's
// analyzers: the //nc: annotation grammar and static callee
// resolution.
package ncutil

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// HasAnnotation reports whether doc contains an //nc:<name> marker
// line (e.g. //nc:hotpath).
func HasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if t == "nc:"+name || strings.HasPrefix(t, "nc:"+name+" ") {
			return true
		}
	}
	return false
}

var lockedRe = regexp.MustCompile(`^nc:locked\(([^)]+)\)`)

// LockedAnnotation extracts the lock expression of an
// //nc:locked(<mutex>) marker from doc: a bare field name ("mu")
// binds to the callee's receiver at each call site, a dotted path
// ("s.mu") matches call-site text literally.
func LockedAnnotation(doc *ast.CommentGroup) (lock string, ok bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if m := lockedRe.FindStringSubmatch(t); m != nil {
			return strings.TrimSpace(m[1]), true
		}
	}
	return "", false
}

// StaticCallee resolves the called function or method when it is
// statically known: a package-level function (possibly imported), or
// a method call on a concrete receiver. Calls through function values
// and interface methods return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				f, _ := sel.Obj().(*types.Func)
				if f != nil && !isInterfaceRecv(f) {
					return f
				}
				return nil
			}
			return nil
		}
		// Qualified identifier: pkg.F.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func isInterfaceRecv(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// IsPkgFunc reports whether f is the package-level function (or any
// method) pkgPath.name.
func IsPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath && f.Name() == name
}

// NamedRecv returns the named type of f's receiver (through one
// pointer), or nil for package-level functions.
func NamedRecv(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
