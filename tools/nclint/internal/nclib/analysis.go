// Package nclib is a self-contained, stdlib-only reimplementation of
// the golang.org/x/tools/go/analysis surface that nclint's analyzers
// program against. The build environment vendors nothing, so instead
// of depending on x/tools this package provides the same three
// capabilities from the standard library alone:
//
//   - loading: packages are enumerated with `go list -export -json
//     -deps`, project packages are parsed and type-checked from
//     source, and dependencies are imported through the compiler's
//     export data out of the build cache (offline, no GOPROXY);
//   - passes and facts: each analyzer runs once per package in
//     dependency order and may attach serializable facts to objects
//     or packages, visible to later passes — the same bottom-up flow
//     x/tools facts have, which is what lets hotpath summaries and
//     lock annotations propagate across package boundaries;
//   - driving: a standalone multichecker over `./...` patterns, a
//     `go vet -vettool` unit-checker protocol, and an
//     analysistest-style fixture harness (nclibtest) with `// want`
//     expectations.
//
// Suppression is centralized here: a finding is silenced by an
// `//nc:allow(analyzer) reason` comment on its line or the line above,
// and a reason is mandatory — an allow without one is itself a
// finding, so the tree can never accumulate unexplained mutings.
package nclib

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one nclint check.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //nc:allow(<name>) suppressions. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description printed by -help.
	Doc string
	// Run performs the per-package analysis.
	Run func(*Pass) error
	// FactTypes lists the fact values the analyzer exports, for gob
	// registration (required in vettool mode, harmless otherwise).
	FactTypes []Fact
	// Finalize, if set, runs once after every package's Run completed,
	// with the whole program in view — for checks that are inherently
	// global, like metric-name uniqueness across the build. Finalize
	// only runs in whole-program drivers (standalone and nclibtest);
	// the vet unit checker analyzes one package at a time and skips it.
	Finalize func(prog *Program, report func(Diagnostic))
}

// A Fact is a serializable value attached to an object or package by
// one pass and imported by later passes of the same analyzer. The
// AFact marker mirrors x/tools; facts must be gob-encodable.
type Fact interface{ AFact() }

// A Diagnostic is one finding, positioned in the file set of the run.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// isProject reports whether a package belongs to the code under
	// analysis (the module, or any non-stdlib package in fixture
	// mode) as opposed to the standard library.
	isProject func(path string) bool
	// allowed reports whether findings of analyzer name at pos are
	// suppressed by an //nc:allow comment. Analyzers consult it when
	// computing facts, so a suppressed allocation site never enters a
	// summary; the driver applies the same filter to diagnostics.
	allowed func(name string, pos token.Position) bool

	report func(Diagnostic)
	facts  *factStore
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsProject reports whether pkg is part of the code under analysis
// (as opposed to the standard library). A nil pkg is the universe
// scope — builtins — and is never project code.
func (p *Pass) IsProject(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return p.isProject(pkg.Path())
}

// Allowed reports whether a finding of this analyzer at pos carries an
// //nc:allow suppression. Use it to keep suppressed sites out of
// exported facts; plain diagnostics are filtered by the driver and do
// not need it.
func (p *Pass) Allowed(pos token.Pos) bool {
	return p.allowed(p.Analyzer.Name, p.Fset.Position(pos))
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.set(p.Analyzer.Name, objFactKey(obj), fact)
}

// ImportObjectFact copies the fact of this analyzer attached to obj
// into *fact, reporting whether one exists. obj may belong to any
// package analyzed earlier in dependency order (or this one).
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.get(p.Analyzer.Name, objFactKey(obj), fact)
}

// ExportPackageFact attaches fact to the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.facts.set(p.Analyzer.Name, pkgFactKey(p.Pkg.Path()), fact)
}

// ImportPackageFact copies the fact attached to pkg into *fact.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	return p.facts.get(p.Analyzer.Name, pkgFactKey(pkg.Path()), fact)
}

// objFactKey builds a stable, process-independent key for a
// package-level object (function, method, var, type). Methods include
// their receiver type so (T).M and (*T).M and a package-level M are
// distinct.
func objFactKey(obj types.Object) string {
	pkg := "_"
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	name := obj.Name()
	if f, ok := obj.(*types.Func); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			star := ""
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
				star = "*"
			}
			if named, ok := t.(*types.Named); ok {
				name = "(" + star + named.Obj().Name() + ")." + f.Name()
			}
		}
	}
	return pkg + "\x1f" + name
}

func pkgFactKey(path string) string { return path + "\x1f\x00pkg" }

// factStore holds gob-encoded facts keyed by (analyzer, object key).
// Facts are always round-tripped through gob, even in-process, so the
// standalone driver and the vet unit checker (which must serialize
// them to .vetx files) exercise identical semantics.
type factStore struct {
	m map[string][]byte // "analyzer\x1ekey" -> gob bytes
}

func newFactStore() *factStore { return &factStore{m: make(map[string][]byte)} }

func (s *factStore) set(analyzer, key string, fact Fact) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(fact); err != nil {
		panic(fmt.Sprintf("nclib: encoding %T fact: %v", fact, err))
	}
	s.m[analyzer+"\x1e"+key] = buf.Bytes()
}

func (s *factStore) get(analyzer, key string, fact Fact) bool {
	b, ok := s.m[analyzer+"\x1e"+key]
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(fact); err != nil {
		panic(fmt.Sprintf("nclib: decoding %T fact: %v", fact, err))
	}
	return true
}

// keysForPackage returns the stored fact keys whose object belongs to
// pkgPath — what the vet unit checker serializes into its .vetx
// output for downstream packages.
func (s *factStore) keysForPackage(pkgPath string) map[string][]byte {
	out := make(map[string][]byte)
	prefix := pkgPath + "\x1f"
	for k, v := range s.m {
		// k is "analyzer\x1epkg\x1fname"
		if i := indexByte(k, '\x1e'); i >= 0 && len(k) > i+len(prefix) && k[i+1:i+1+len(prefix)] == prefix {
			out[k] = v
		}
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
