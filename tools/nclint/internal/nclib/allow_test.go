package nclib

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// scanFixture parses src and runs scanAllows over it, returning the
// Program and a position helper for line n of the fixture file.
func scanFixture(t *testing.T, src string) (*Program, func(line int) token.Position) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	prog := &Program{Fset: fset, allows: map[string][]allowComment{}}
	prog.scanAllows("fix.go", f)
	return prog, func(line int) token.Position {
		return token.Position{Filename: "fix.go", Line: line}
	}
}

func TestAllowedScope(t *testing.T) {
	prog, at := scanFixture(t, `package p

func f() {
	_ = 1 //nc:allow(hotpath) amortized: once per rebuild
	_ = 2
	_ = 3
}
`)
	// Line 4 carries the allow; it covers its own line and line 5.
	for _, tc := range []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"hotpath", 4, true},
		{"hotpath", 5, true},
		{"hotpath", 6, false}, // two lines below: out of scope
		{"hotpath", 3, false}, // line above: out of scope
		{"ctxio", 4, false},   // different analyzer
	} {
		if got := prog.allowed(tc.analyzer, at(tc.line)); got != tc.want {
			t.Errorf("allowed(%s, line %d) = %v, want %v", tc.analyzer, tc.line, got, tc.want)
		}
	}
	if ds := prog.allowFindings(map[string]bool{"hotpath": true}); len(ds) != 0 {
		t.Errorf("well-formed allow produced findings: %v", ds)
	}
}

func TestAllowMultipleAnalyzers(t *testing.T) {
	prog, at := scanFixture(t, `package p

func f() {
	//nc:allow(hotpath, ctxio) shared fixture path
	_ = 1
}
`)
	for _, name := range []string{"hotpath", "ctxio"} {
		if !prog.allowed(name, at(5)) {
			t.Errorf("allowed(%s, line 5) = false, want true", name)
		}
	}
}

func TestReasonlessAllowDoesNotSuppress(t *testing.T) {
	prog, at := scanFixture(t, `package p

func f() {
	_ = 1 //nc:allow(hotpath)
}
`)
	if prog.allowed("hotpath", at(4)) {
		t.Fatal("reasonless allow suppressed a finding; it must not")
	}
	ds := prog.allowFindings(map[string]bool{"hotpath": true})
	if len(ds) != 1 {
		t.Fatalf("got %d allow findings, want 1: %v", len(ds), ds)
	}
	if ds[0].Analyzer != "allow" || !strings.Contains(ds[0].Message, "requires a reason") {
		t.Errorf("unexpected finding: %+v", ds[0])
	}
	if ds[0].Position.Line != 4 {
		t.Errorf("finding at line %d, want 4", ds[0].Position.Line)
	}
}

func TestAllowUnknownAnalyzer(t *testing.T) {
	prog, _ := scanFixture(t, `package p

func f() {
	_ = 1 //nc:allow(hotpaths) typo in the analyzer name
}
`)
	ds := prog.allowFindings(map[string]bool{"hotpath": true})
	if len(ds) != 1 {
		t.Fatalf("got %d allow findings, want 1: %v", len(ds), ds)
	}
	if !strings.Contains(ds[0].Message, `unknown analyzer "hotpaths"`) {
		t.Errorf("unexpected message: %q", ds[0].Message)
	}
}

func TestAllowNamesNoAnalyzer(t *testing.T) {
	prog, _ := scanFixture(t, `package p

func f() {
	_ = 1 //nc:allow() just a reason, no target
}
`)
	ds := prog.allowFindings(map[string]bool{"hotpath": true})
	if len(ds) != 1 {
		t.Fatalf("got %d allow findings, want 1: %v", len(ds), ds)
	}
	if !strings.Contains(ds[0].Message, "names no analyzer") {
		t.Errorf("unexpected message: %q", ds[0].Message)
	}
}
