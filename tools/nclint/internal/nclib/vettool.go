package nclib

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON the go command writes for -vettool
// invocations (x/tools unitchecker.Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetMain implements the `go vet -vettool` protocol: the version
// handshake (-V=full), flag discovery (-flags), and per-package unit
// checking driven by a *.cfg file. It returns true if it recognized
// and fully handled the invocation (the caller should then exit),
// false if the arguments are a normal standalone run.
//
// version participates in go vet's result caching — bump it whenever
// an analyzer's behavior changes, or stale cached results will mask
// new findings.
func VetMain(args []string, version string, analyzers []*Analyzer) bool {
	if len(args) == 1 {
		switch args[0] {
		case "-V=full":
			fmt.Printf("nclint version %s\n", version)
			return true
		case "-flags":
			// No analyzer exposes flags; tell the go command so.
			fmt.Println("[]")
			return true
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return false
	}
	diags, err := vetUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	return true
}

// vetUnit analyzes the single package described by cfgPath.
func vetUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("nclint: parsing %s: %w", cfgPath, err)
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}

	fset := token.NewFileSet()
	prog := &Program{Fset: fset, ByPath: map[string]*Package{}, allows: map[string][]allowComment{}}
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeEmptyVetx(cfg)
			}
			return nil, err
		}
		files = append(files, f)
		prog.scanAllows(name, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("nclint: no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tconf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeEmptyVetx(cfg)
		}
		return nil, err
	}

	// Upstream facts: one gob map per dependency's .vetx file.
	facts := newFactStore()
	for _, vetx := range cfg.PackageVetx {
		f, err := os.Open(vetx)
		if err != nil {
			continue // dependency exported no facts
		}
		var m map[string][]byte
		derr := gob.NewDecoder(f).Decode(&m)
		_ = f.Close() // read-only handle; the decode error is the verdict
		if derr != nil {
			return nil, fmt.Errorf("nclint: reading facts %s: %w", vetx, derr)
		}
		for k, v := range m {
			facts.m[k] = v
		}
	}

	// go vet feeds test files into the unit too; nclint's invariants
	// are production-code contracts (tests sleep, drop Close errors,
	// and poke sentinels by design), so _test.go files participate in
	// type-checking but are not analyzed — matching the standalone
	// driver, which loads only GoFiles.
	analysisFiles := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			analysisFiles = append(analysisFiles, f)
		}
	}

	isProject := func(path string) bool { return !cfg.Standard[path] }
	var raw []Diagnostic
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     analysisFiles,
			Pkg:       tpkg,
			TypesInfo: info,
			isProject: isProject,
			allowed:   prog.allowed,
			report:    func(d Diagnostic) { raw = append(raw, d) },
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("nclint: %s on %s: %w", a.Name, cfg.ImportPath, err)
		}
		// Finalize is whole-program; the unit protocol sees one
		// package at a time, so cross-build checks run only in the
		// standalone driver.
	}

	if err := writeVetx(cfg, facts); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	var out []Diagnostic
	for _, d := range raw {
		if prog.allowed(d.Analyzer, d.Position) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, prog.allowFindings(known)...)
	sortDiagnostics(out)
	return out, nil
}

// writeVetx persists this package's exported facts for downstream
// units. The go command requires the file to exist even when empty.
func writeVetx(cfg vetConfig, facts *factStore) error {
	f, err := os.Create(cfg.VetxOutput)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(facts.keysForPackage(cfg.ImportPath)); err != nil {
		_ = f.Close() // the encode error is the one to surface
		return err
	}
	return f.Close()
}

func writeEmptyVetx(cfg vetConfig) ([]Diagnostic, error) {
	return nil, writeVetx(cfg, newFactStore())
}
