package nclib

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded package. Project packages carry syntax and
// full type information; standard-library dependencies carry only the
// path to their export data.
type Package struct {
	PkgPath  string
	Dir      string
	GoFiles  []string
	Standard bool
	Project  bool
	export   string

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Program is one loaded build: every package named by the load
// patterns plus their dependencies, with project packages
// type-checked from source in dependency order.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds the project packages in dependency order (imports
	// before importers) — the order analyzers run in.
	Pkgs   []*Package
	ByPath map[string]*Package
	// ModulePath and ModuleDir identify the main module ("" outside
	// module mode, e.g. the GOPATH-style fixture harness).
	ModulePath string
	ModuleDir  string

	allows map[string][]allowComment // filename -> parsed //nc:allow comments
}

// IsProject reports whether the package at path is code under
// analysis rather than standard library.
func (prog *Program) IsProject(path string) bool {
	p, ok := prog.ByPath[path]
	return ok && p.Project
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the working directory for go list (the module root, or a
	// fixture's GOPATH in tests). Empty means the process cwd.
	Dir string
	// Env entries are appended to the environment for go list and
	// type-checking subprocesses (e.g. GO111MODULE=off, GOPATH=...).
	Env []string
	// Patterns are the go list package patterns ("./...", "a", ...).
	Patterns []string
}

// listPackage mirrors the go list -json fields Load consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
	Error *struct{ Err string }
}

// Load enumerates patterns with `go list -export -json -deps`, parses
// every project package from source, and type-checks them in
// dependency order, importing standard-library dependencies through
// their export data in the build cache. It is fully offline: nothing
// is fetched, nothing outside the build cache is written.
func Load(cfg LoadConfig) (*Program, error) {
	args := []string{
		"list", "-export",
		"-json=Dir,ImportPath,Export,Standard,GoFiles,Module,Error",
		"-deps", "--",
	}
	args = append(args, cfg.Patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), cfg.Env...)
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("nclib: go list %s: %s", strings.Join(cfg.Patterns, " "), msg)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		ByPath: make(map[string]*Package),
		allows: make(map[string][]allowComment),
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	var order []*Package
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("nclib: decoding go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("nclib: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		p := &Package{
			PkgPath:  lp.ImportPath,
			Dir:      lp.Dir,
			GoFiles:  lp.GoFiles,
			Standard: lp.Standard,
			Project:  !lp.Standard && lp.ImportPath != "unsafe",
			export:   lp.Export,
		}
		if lp.Module != nil && lp.Module.Main {
			prog.ModulePath = lp.Module.Path
			prog.ModuleDir = lp.Module.Dir
		}
		prog.ByPath[p.PkgPath] = p
		order = append(order, p)
	}

	imp := &progImporter{prog: prog}
	imp.gc = importer.ForCompiler(prog.Fset, "gc", imp.lookup)
	for _, p := range order {
		if !p.Project {
			continue
		}
		if err := typecheck(prog, p, imp); err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, p)
	}
	return prog, nil
}

// typecheck parses and checks one project package from source.
func typecheck(prog *Program, p *Package, imp types.Importer) error {
	for _, name := range p.GoFiles {
		path := filepath.Join(p.Dir, name)
		f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("nclib: parsing %s: %w", path, err)
		}
		p.Syntax = append(p.Syntax, f)
		prog.scanAllows(path, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.PkgPath, prog.Fset, p.Syntax, p.Info)
	if err != nil {
		return fmt.Errorf("nclib: type-checking %s: %w", p.PkgPath, err)
	}
	p.Types = tpkg
	return nil
}

// progImporter resolves imports during type-checking: project
// packages by identity (the source-checked *types.Package, so object
// identity and facts line up across packages), everything else
// through compiler export data.
type progImporter struct {
	prog *Program
	gc   types.Importer
}

func (pi *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := pi.prog.ByPath[path]; ok && p.Project {
		if p.Types == nil {
			return nil, fmt.Errorf("nclib: import cycle or out-of-order import of %q", path)
		}
		return p.Types, nil
	}
	return pi.gc.Import(path)
}

// ImportFrom satisfies types.ImporterFrom; vendoring does not apply to
// the packages nclint loads, so the path is authoritative.
func (pi *progImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return pi.Import(path)
}

// lookup feeds the gc importer export data straight from the build
// cache paths go list reported.
func (pi *progImporter) lookup(path string) (io.ReadCloser, error) {
	p, ok := pi.prog.ByPath[path]
	if !ok || p.export == "" {
		return nil, fmt.Errorf("nclib: no export data for %q", path)
	}
	return os.Open(p.export)
}
