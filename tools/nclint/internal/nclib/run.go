package nclib

import (
	"fmt"
)

// RunAnalyzers runs every analyzer over every project package of prog
// in dependency order, then runs Finalize hooks, then filters the
// findings through //nc:allow suppressions and appends malformed-allow
// findings. The returned diagnostics are sorted by position.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	facts := newFactStore()
	var raw []Diagnostic
	report := func(d Diagnostic) { raw = append(raw, d) }

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				isProject: prog.IsProject,
				allowed:   prog.allowed,
				report:    report,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("nclib: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finalize != nil {
			name := a.Name
			a.Finalize(prog, func(d Diagnostic) {
				d.Analyzer = name
				raw = append(raw, d)
			})
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		if prog.allowed(d.Analyzer, d.Position) {
			continue
		}
		out = append(out, d)
	}
	out = append(out, prog.allowFindings(known)...)
	sortDiagnostics(out)
	return out, nil
}
