package nclib

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowComment is one parsed //nc:allow(<analyzers>) <reason> comment.
// It suppresses findings of the named analyzers on its own line and on
// the line directly below it (so it works both as a trailing comment
// and as a standalone line above the finding).
type allowComment struct {
	pos       token.Position
	analyzers []string
	reason    string
}

var allowRe = regexp.MustCompile(`^//\s*nc:allow\(([^)]*)\)\s*(.*)$`)

// scanAllows records every //nc:allow comment in f so both fact
// computation (Pass.Allowed) and the driver's diagnostic filter see
// the same suppressions.
func (prog *Program) scanAllows(filename string, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			var names []string
			for _, n := range strings.Split(m[1], ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			prog.allows[filename] = append(prog.allows[filename], allowComment{
				pos:       prog.Fset.Position(c.Pos()),
				analyzers: names,
				reason:    strings.TrimSpace(m[2]),
			})
		}
	}
}

// allowed reports whether a finding of analyzer name at pos is
// suppressed. Suppressions without a reason do not suppress — they
// are themselves findings (see allowFindings) — so an unexplained
// allow can never silently mute the tree.
func (prog *Program) allowed(name string, pos token.Position) bool {
	for _, a := range prog.allows[pos.Filename] {
		if a.reason == "" {
			continue
		}
		if pos.Line != a.pos.Line && pos.Line != a.pos.Line+1 {
			continue
		}
		for _, n := range a.analyzers {
			if n == name {
				return true
			}
		}
	}
	return false
}

// allowFindings reports malformed suppressions: an //nc:allow with no
// reason string, or one naming an unknown analyzer. These come from
// the driver itself (analyzer name "allow") and cannot be suppressed.
func (prog *Program) allowFindings(known map[string]bool) []Diagnostic {
	var ds []Diagnostic
	for _, allows := range prog.allows {
		for _, a := range allows {
			if a.reason == "" {
				ds = append(ds, Diagnostic{
					Position: a.pos,
					Analyzer: "allow",
					Message:  "//nc:allow requires a reason: //nc:allow(analyzer) <why this finding is acceptable>",
				})
			}
			if len(a.analyzers) == 0 {
				ds = append(ds, Diagnostic{
					Position: a.pos,
					Analyzer: "allow",
					Message:  "//nc:allow names no analyzer",
				})
			}
			for _, n := range a.analyzers {
				if !known[n] {
					ds = append(ds, Diagnostic{
						Position: a.pos,
						Analyzer: "allow",
						Message:  fmt.Sprintf("//nc:allow names unknown analyzer %q", n),
					})
				}
			}
		}
	}
	return ds
}
