// Package nclibtest is nclib's analysistest: it loads fixture
// packages from a testdata directory laid out GOPATH-style
// (testdata/src/<pkg>/*.go), runs one analyzer over them, and checks
// the findings against `// want "regexp"` comments in the fixtures.
//
// Fixtures are compiled real code — they are type-checked with full
// standard-library imports — so every analyzer test exercises exactly
// the code path the production run does, including cross-package fact
// propagation (a fixture package importing another fixture package).
package nclibtest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"netcoord/tools/nclint/internal/nclib"
)

// Run loads the named fixture packages (and their deps) from the
// test's testdata directory and reports any mismatch between the
// analyzer's findings and the fixtures' // want expectations.
func Run(t *testing.T, a *nclib.Analyzer, pkgs ...string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("resolving testdata: %v", err)
	}
	prog, err := nclib.Load(nclib.LoadConfig{
		Dir: testdata,
		Env: []string{
			"GO111MODULE=off",
			"GOPATH=" + testdata,
			"GOFLAGS=",
		},
		Patterns: pkgs,
	})
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := nclib.RunAnalyzers(prog, []*nclib.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*want)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					for _, w := range parseWants(t, pos.Filename, pos.Line, c.Text) {
						wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], w)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s: %s", d.Position, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.re)
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// parseWants extracts the expectations from one comment. The grammar
// is analysistest's: `// want "re" "re2" ...`, with each pattern a Go
// string literal (interpreted or raw).
func parseWants(t *testing.T, file string, line int, text string) []*want {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil
	}
	var out []*want
	rest = strings.TrimSpace(rest)
	for rest != "" {
		lit, tail, err := cutStringLit(rest)
		if err != nil {
			t.Fatalf("%s:%d: malformed want: %v", file, line, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s:%d: want pattern: %v", file, line, err)
		}
		out = append(out, &want{re: re})
		rest = strings.TrimSpace(tail)
	}
	return out
}

// cutStringLit splits one leading Go string literal off s.
func cutStringLit(s string) (value, rest string, err error) {
	switch {
	case strings.HasPrefix(s, "`"):
		end := strings.Index(s[1:], "`")
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string in %q", s)
		}
		return s[1 : 1+end], s[end+2:], nil
	case strings.HasPrefix(s, `"`):
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				v, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", "", err
				}
				return v, s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated string in %q", s)
	default:
		return "", "", fmt.Errorf("want pattern must be a string literal, got %q", s)
	}
}
