package netcoord

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"netcoord/internal/changefeed"
)

// codecSampleEvents covers every op and the value shapes that push the
// fast JSON path onto its edges (and off it, onto the stdlib fallback).
func codecSampleEvents() []ChangeEvent {
	return []ChangeEvent{
		{Seq: 1, Op: ChangeUpsert, PubNs: 1712345678901234567, Epoch: 3, Entry: &ChangeEntry{
			ID:                "node-0001",
			Coord:             c3(12.5, -3.25, 0.0625),
			Error:             0.15,
			UpdatedAtUnixNano: 1712345678901234567,
		}},
		{Seq: 2, Op: ChangeUpsert, Entry: &ChangeEntry{
			ID:                "h",
			Coord:             Coordinate{Vec: []float64{1e-7, 1e21, -1e-6, 0.1}, Height: 2.5},
			UpdatedAtUnixNano: -12345,
		}},
		{Seq: 3, Op: ChangeUpsert, Entry: &ChangeEntry{
			ID:                "",
			Coord:             Coordinate{},
			UpdatedAtUnixNano: 0,
		}},
		{Seq: 4, Op: ChangeUpsert, Entry: &ChangeEntry{
			ID:                "edge",
			Coord:             Coordinate{Vec: []float64{}, Height: -1e-9},
			Error:             math.MaxFloat64,
			UpdatedAtUnixNano: 7,
		}},
		{Seq: 5, Op: ChangeRemove, ID: "node-0001", PubNs: -50, Epoch: math.MaxUint64},
		{Seq: 6, Op: ChangeEvict, IDs: []string{"a", "b", "c"}},
		{Seq: 7, Op: ChangeEvict, IDs: []string{""}},
		{Seq: 0, Op: ChangeRemove, ID: `quote"backslash\and<html>&`},
		{Seq: 8, Op: ChangeRemove, ID: "unicode-ü "},
		{Seq: 9, Op: ChangeUpsert, Coalesced: 4, Entry: &ChangeEntry{
			ID:                "labelled",
			Coord:             c3(1, 2, 3),
			UpdatedAtUnixNano: 11,
		}},
		{Seq: 10, Op: ChangeUpsert, Entry: &ChangeEntry{
			ID:                "snapshot-shaped",
			Coord:             c3(4, 5, 6),
			UpdatedAtUnixNano: 12,
			Seq:               10,
		}},
	}
}

// TestChangeEventJSONMatchesStdlib is the contract the fast encoder
// lives under: for ANY event, MarshalJSON produces byte-for-byte what
// encoding/json would produce for the same fields.
func TestChangeEventJSONMatchesStdlib(t *testing.T) {
	for i, ev := range codecSampleEvents() {
		got, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("event %d: Marshal: %v", i, err)
		}
		want, err := json.Marshal(changeEventJSON(ev))
		if err != nil {
			t.Fatalf("event %d: stdlib Marshal: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("event %d diverges from stdlib:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestChangeEventJSONNonFinite: the stdlib refuses non-finite floats;
// the fast path must refuse identically, not render them.
func TestChangeEventJSONNonFinite(t *testing.T) {
	for _, bad := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		ev := ChangeEvent{Seq: 1, Op: ChangeUpsert, Entry: &ChangeEntry{ID: "x", Coord: c3(1, 2, bad)}}
		if _, err := json.Marshal(ev); err == nil {
			t.Fatalf("Marshal accepted non-finite component %v", bad)
		}
	}
}

// TestChangeEventJSONCachedOnce: with an encode cache attached, the
// first marshal stores bytes and later marshals return the same
// backing array without re-encoding.
func TestChangeEventJSONCachedOnce(t *testing.T) {
	ev := codecSampleEvents()[0]
	ev.enc = &changefeed.Encoded{}
	first, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	cached := ev.enc.JSON()
	if cached == nil {
		t.Fatal("marshal did not populate the cache")
	}
	again, err := ev.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if &again[0] != &cached[0] {
		t.Fatal("second marshal re-encoded instead of serving the cache")
	}
	if !bytes.Equal(first, again) {
		t.Fatalf("cache mismatch: %s vs %s", first, again)
	}

	// A labelled delivery renders a different shape and must bypass the
	// cache in both directions.
	labelled := ev
	labelled.Coalesced = 3
	out, err := json.Marshal(labelled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"coalesced":3`)) {
		t.Fatalf("labelled marshal lost the label: %s", out)
	}
	if bytes.Contains(ev.enc.JSON(), []byte("coalesced")) {
		t.Fatal("labelled form leaked into the cache")
	}
}

// TestChangeEventFrameRoundTrip: event → frame bytes → event is
// lossless for every frameable shape (PubNs is clamped non-negative on
// the wire by design).
func TestChangeEventFrameRoundTrip(t *testing.T) {
	for i, ev := range codecSampleEvents() {
		ev.Coalesced = 0 // frames carry no label; the binary path is ring-fed
		if ev.Entry != nil && ev.Entry.Seq != 0 {
			// The entry-level sequence travels only in snapshots (where the
			// writer stamps it onto the frame's own Seq), never in change
			// events, so the converter pair legitimately drops it.
			e := *ev.Entry
			e.Seq = 0
			ev.Entry = &e
		}
		buf, err := ev.AppendFrameTo(nil)
		if err != nil {
			t.Fatalf("event %d: AppendFrameTo: %v", i, err)
		}
		fr, err := frameFromChangeEvent(ev)
		if err != nil {
			t.Fatal(err)
		}
		back, err := changeEventFromFrame(&fr)
		if err != nil {
			t.Fatalf("event %d: changeEventFromFrame: %v", i, err)
		}
		gotJSON, _ := json.Marshal(changeEventJSON(back))
		wantJSON, _ := json.Marshal(changeEventJSON(ev))
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("event %d converter round trip diverged:\n got %s\nwant %s", i, gotJSON, wantJSON)
		}
		if len(buf) == 0 {
			t.Fatalf("event %d produced an empty frame", i)
		}
	}
}

// TestChangeEventFrameCachedVerbatim: with a cache attached, the first
// AppendFrameTo stores the frame and later calls append those exact
// bytes — the relay-forward guarantee.
func TestChangeEventFrameCachedVerbatim(t *testing.T) {
	ev := codecSampleEvents()[0]
	ev.enc = &changefeed.Encoded{}
	first, err := ev.AppendFrameTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	cached := ev.enc.Frame()
	if cached == nil {
		t.Fatal("AppendFrameTo did not populate the cache")
	}
	prefix := []byte("prefix")
	again, err := ev.AppendFrameTo(prefix)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, append([]byte("prefix"), first...)) {
		t.Fatal("cached append diverged from the first encoding")
	}
}

// FuzzChangeEventJSON drives the stdlib-equivalence property with
// hostile field values.
func FuzzChangeEventJSON(f *testing.F) {
	f.Add(uint64(1), "upsert", "node-1", 1.5, 2.5, 0.1, int64(123), uint64(0))
	f.Add(uint64(2), "remove", "we\"ird<id>", 0.0, 0.0, 0.0, int64(-1), uint64(3))
	f.Add(uint64(3), "evict", "\x00\x7f\xff", 1e-7, 1e21, -0.0, int64(0), uint64(1))
	f.Fuzz(func(t *testing.T, seq uint64, op, id string, x, h, errw float64, upd int64, coal uint64) {
		ev := ChangeEvent{Seq: seq, Op: op, PubNs: upd, Coalesced: coal}
		switch op {
		case ChangeUpsert:
			ev.Entry = &ChangeEntry{ID: id, Coord: Coordinate{Vec: []float64{x, x / 3}, Height: h}, Error: errw, UpdatedAtUnixNano: upd}
		case ChangeEvict:
			ev.IDs = []string{id, ""}
		default:
			ev.ID = id
		}
		got, gotErr := json.Marshal(ev)
		want, wantErr := json.Marshal(changeEventJSON(ev))
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error divergence: %v vs %v", gotErr, wantErr)
		}
		if gotErr == nil && !bytes.Equal(got, want) {
			t.Fatalf("output divergence:\n got %s\nwant %s", got, want)
		}
	})
}
