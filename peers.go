package netcoord

import (
	"fmt"
	"sort"
)

// peerState is the last-known coordinate state of a remote node.
type peerState struct {
	coord Coordinate
	err   float64
}

// rememberPeer records the freshest remote state, respecting the
// MaxLinks bound (shared with the filter bank: if we filter a link, we
// can afford to remember its coordinate). Callers hold c.mu.
func (c *Client) rememberPeer(id string, remote Coordinate, remoteErr float64) {
	if c.peers == nil {
		c.peers = make(map[string]peerState)
	}
	if _, known := c.peers[id]; !known && c.cfg.MaxLinks > 0 && len(c.peers) >= c.cfg.MaxLinks {
		return
	}
	c.peers[id] = peerState{coord: remote.Clone(), err: remoteErr}
}

// PeerCoordinate returns the last coordinate observed for the given peer
// id, if any.
func (c *Client) PeerCoordinate(id string) (Coordinate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.peers[id]
	if !ok {
		return Coordinate{}, false
	}
	return st.coord.Clone(), true
}

// EstimateRTTToPeer predicts the RTT in milliseconds to a peer the
// client has observed before, from its remembered coordinate.
func (c *Client) EstimateRTTToPeer(id string) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.peers[id]
	if !ok {
		return 0, fmt.Errorf("netcoord: unknown peer %q", id)
	}
	d, err := c.viv.EstimateRTT(st.coord)
	if err != nil {
		return 0, fmt.Errorf("netcoord: %w", err)
	}
	return d, nil
}

// Peers returns the ids of all remembered peers, sorted.
func (c *Client) Peers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for id := range c.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NearestPeers ranks the remembered peers by estimated RTT and returns
// the closest k — Nearest over the client's own observation history.
func (c *Client) NearestPeers(k int) ([]Ranked, error) {
	c.mu.Lock()
	candidates := make([]Candidate, 0, len(c.peers))
	for id, st := range c.peers {
		candidates = append(candidates, Candidate{ID: id, Coord: st.coord.Clone()})
	}
	self := c.viv.Coordinate()
	c.mu.Unlock()
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].ID < candidates[j].ID })
	return Nearest(self, candidates, k)
}

// ForgetPeer drops the remembered coordinate, the link filter state,
// and any cached nearest-neighbor status for a departed peer.
func (c *Client) ForgetPeer(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.peers, id)
	c.bank.Forget(id)
	c.forgetNN(id)
}
