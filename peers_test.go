package netcoord

import (
	"math"
	"testing"
)

// observedClient builds a client that has observed three peers at
// distinct latencies.
func observedClient(t *testing.T) *Client {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 21
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	peers := map[string]float64{"near": 15, "mid": 80, "far": 220}
	// Remote coordinates placed consistently with their latencies.
	coords := map[string]Coordinate{
		"near": c3(15, 0, 0),
		"mid":  c3(80, 0, 0),
		"far":  c3(220, 0, 0),
	}
	for i := 0; i < 120; i++ {
		for id, rtt := range peers {
			if _, err := c.Observe(id, rtt, coords[id], 0.3); err != nil {
				t.Fatalf("Observe %s: %v", id, err)
			}
		}
	}
	return c
}

func TestPeerCoordinateRemembered(t *testing.T) {
	c := observedClient(t)
	got, ok := c.PeerCoordinate("mid")
	if !ok {
		t.Fatal("mid peer not remembered")
	}
	if !got.Equal(c3(80, 0, 0)) {
		t.Fatalf("remembered coordinate %v", got)
	}
	if _, ok := c.PeerCoordinate("stranger"); ok {
		t.Fatal("unknown peer reported as known")
	}
}

func TestEstimateRTTToPeer(t *testing.T) {
	c := observedClient(t)
	for id, want := range map[string]float64{"near": 15, "mid": 80, "far": 220} {
		est, err := c.EstimateRTTToPeer(id)
		if err != nil {
			t.Fatalf("EstimateRTTToPeer(%s): %v", id, err)
		}
		if math.Abs(est-want) > want*0.35+5 {
			t.Fatalf("estimate to %s = %v, want ~%v", id, est, want)
		}
	}
	if _, err := c.EstimateRTTToPeer("stranger"); err == nil {
		t.Fatal("unknown peer estimated")
	}
}

func TestPeersSorted(t *testing.T) {
	c := observedClient(t)
	got := c.Peers()
	want := []string{"far", "mid", "near"}
	if len(got) != len(want) {
		t.Fatalf("Peers = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers = %v, want %v", got, want)
		}
	}
}

func TestNearestPeers(t *testing.T) {
	c := observedClient(t)
	got, err := c.NearestPeers(2)
	if err != nil {
		t.Fatalf("NearestPeers: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d peers", len(got))
	}
	if got[0].ID != "near" || got[1].ID != "mid" {
		t.Fatalf("order = %s, %s", got[0].ID, got[1].ID)
	}
}

func TestForgetPeerDropsEverything(t *testing.T) {
	c := observedClient(t)
	c.ForgetPeer("mid")
	if _, ok := c.PeerCoordinate("mid"); ok {
		t.Fatal("forgotten peer still remembered")
	}
	if c.Links() != 2 {
		t.Fatalf("Links = %d after forget, want 2", c.Links())
	}
	if len(c.Peers()) != 2 {
		t.Fatalf("Peers = %v", c.Peers())
	}
}

func TestPeerRegistryBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxLinks = 2
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	remote := c3(50, 0, 0)
	for _, id := range []string{"a", "b", "c", "d"} {
		if _, err := c.Observe(id, 50, remote, 0.5); err != nil {
			t.Fatalf("Observe %s: %v", id, err)
		}
	}
	if got := len(c.Peers()); got != 2 {
		t.Fatalf("registry grew to %d with MaxLinks=2", got)
	}
	// Known peers keep refreshing even at the bound.
	moved := c3(60, 0, 0)
	if _, err := c.Observe("a", 60, moved, 0.5); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	got, ok := c.PeerCoordinate("a")
	if !ok || !got.Equal(moved) {
		t.Fatalf("bounded registry did not refresh known peer: %v %v", got, ok)
	}
}

func TestPeerCoordinateIsolatedFromCaller(t *testing.T) {
	c := observedClient(t)
	got, ok := c.PeerCoordinate("near")
	if !ok {
		t.Fatal("near missing")
	}
	got.Vec[0] = 9999
	again, _ := c.PeerCoordinate("near")
	if again.Vec[0] == 9999 {
		t.Fatal("PeerCoordinate aliases internal state")
	}
}

// nnForgotten reports whether the client's cached nearest-neighbor
// state is fully cleared.
func nnForgotten(c *Client) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.hasNN && c.nnID == "" && math.IsInf(c.nnDist, 1)
}

func TestForgetPeerClearsNearestNeighbor(t *testing.T) {
	// Regression: forgetting the current nearest neighbor used to leave
	// nnID/nnDist/nnCoord behind, so the RELATIVE policy kept measuring
	// centroid shift against the departed peer's stale coordinate
	// forever (and no farther peer could ever displace its distance).
	c := observedClient(t)
	c.mu.Lock()
	nn := c.nnID
	c.mu.Unlock()
	if nn != "near" {
		t.Fatalf("nearest neighbor = %q, want \"near\"", nn)
	}

	// Forgetting a non-NN peer must leave the cached NN alone.
	c.ForgetPeer("far")
	if nnForgotten(c) {
		t.Fatal("forgetting a non-NN peer cleared the nearest neighbor")
	}

	c.ForgetPeer("near")
	if !nnForgotten(c) {
		t.Fatal("forgetting the nearest neighbor left its cached state behind")
	}

	// The next observed peer is elected NN even though it is farther
	// than the departed one ever was.
	if _, err := c.Observe("mid", 80, c3(80, 0, 0), 0.3); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	c.mu.Lock()
	nn, has := c.nnID, c.hasNN
	c.mu.Unlock()
	if !has || nn != "mid" {
		t.Fatalf("after forget, nearest neighbor = %q (has=%v), want \"mid\"", nn, has)
	}
}

func TestForgetLinkClearsNearestNeighbor(t *testing.T) {
	c := observedClient(t)
	c.ForgetLink("near")
	if !nnForgotten(c) {
		t.Fatal("ForgetLink left the departed peer's nearest-neighbor state behind")
	}
}
