package netcoord

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"netcoord/internal/xrand"
)

func c3(x, y, z float64) Coordinate {
	c := Origin(3)
	c.Vec[0], c.Vec[1], c.Vec[2] = x, y, z
	return c
}

func TestNearestRanksByDistance(t *testing.T) {
	from := c3(0, 0, 0)
	candidates := []Candidate{
		{ID: "far", Coord: c3(100, 0, 0)},
		{ID: "near", Coord: c3(10, 0, 0)},
		{ID: "mid", Coord: c3(50, 0, 0)},
	}
	got, err := Nearest(from, candidates, 2)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].ID != "near" || got[1].ID != "mid" {
		t.Fatalf("order = %s, %s; want near, mid", got[0].ID, got[1].ID)
	}
	if got[0].EstimatedRTT != 10 {
		t.Fatalf("EstimatedRTT = %v", got[0].EstimatedRTT)
	}
}

func TestNearestKLargerThanPool(t *testing.T) {
	got, err := Nearest(c3(0, 0, 0), []Candidate{{ID: "a", Coord: c3(1, 0, 0)}}, 5)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d, want all (1)", len(got))
	}
}

func TestNearestValidation(t *testing.T) {
	if _, err := Nearest(c3(0, 0, 0), nil, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	bad := []Candidate{{ID: "2d", Coord: Origin(2)}}
	if _, err := Nearest(c3(0, 0, 0), bad, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestNearestEmptyPool(t *testing.T) {
	got, err := Nearest(c3(0, 0, 0), nil, 3)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d from empty pool", len(got))
	}
}

func TestNearestStableOnTies(t *testing.T) {
	from := c3(0, 0, 0)
	candidates := []Candidate{
		{ID: "first", Coord: c3(10, 0, 0)},
		{ID: "second", Coord: c3(0, 10, 0)},
	}
	got, err := Nearest(from, candidates, 2)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if got[0].ID != "first" {
		t.Fatal("tie order not stable")
	}
}

func TestMinimaxPlacement(t *testing.T) {
	producer := c3(0, 0, 0)
	consumer := c3(100, 0, 0)
	candidates := []Candidate{
		{ID: "edge", Coord: c3(90, 0, 0)},   // worst = 90
		{ID: "middle", Coord: c3(50, 0, 0)}, // worst = 50
		{ID: "offside", Coord: c3(50, 80, 0)},
	}
	best, err := MinimaxPlacement([]Coordinate{producer, consumer}, candidates)
	if err != nil {
		t.Fatalf("MinimaxPlacement: %v", err)
	}
	if best.ID != "middle" {
		t.Fatalf("best = %s, want middle", best.ID)
	}
	if best.EstimatedRTT != 50 {
		t.Fatalf("worst-case RTT = %v, want 50", best.EstimatedRTT)
	}
}

func TestMinimaxPlacementValidation(t *testing.T) {
	if _, err := MinimaxPlacement(nil, []Candidate{{ID: "a", Coord: c3(0, 0, 0)}}); err == nil {
		t.Fatal("no anchors accepted")
	}
	if _, err := MinimaxPlacement([]Coordinate{c3(0, 0, 0)}, nil); err == nil {
		t.Fatal("no candidates accepted")
	}
	if _, err := MinimaxPlacement([]Coordinate{Origin(2)}, []Candidate{{ID: "a", Coord: c3(0, 0, 0)}}); err == nil {
		t.Fatal("mismatched anchor accepted")
	}
}

// Property: Nearest(k) results are sorted ascending, and the k-th result
// is no farther than any excluded candidate.
func TestNearestProperty(t *testing.T) {
	rng := xrand.NewStream(77)
	f := func(seed uint64) bool {
		local := xrand.NewStream(seed ^ rng.Uint64())
		n := 2 + local.Intn(20)
		candidates := make([]Candidate, n)
		for i := range candidates {
			candidates[i] = Candidate{
				ID:    string(rune('a' + i)),
				Coord: c3(local.Uniform(-100, 100), local.Uniform(-100, 100), local.Uniform(-100, 100)),
			}
		}
		k := 1 + local.Intn(n)
		from := c3(local.Uniform(-100, 100), 0, 0)
		got, err := Nearest(from, candidates, k)
		if err != nil || len(got) != k {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].EstimatedRTT < got[i-1].EstimatedRTT {
				return false
			}
		}
		// No excluded candidate may be closer than the k-th selected.
		selected := map[string]bool{}
		for _, r := range got {
			selected[r.ID] = true
		}
		kth := got[len(got)-1].EstimatedRTT
		for _, c := range candidates {
			if selected[c.ID] {
				continue
			}
			d, err := from.DistanceTo(c.Coord)
			if err != nil {
				return false
			}
			if d < kth-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNearestWithClientCoordinates(t *testing.T) {
	// End-to-end: build a few clients, converge them pairwise, then
	// select the nearest from real coordinates.
	mk := func(seed uint64) *Client {
		cfg := DefaultConfig()
		cfg.Seed = seed
		c, err := NewClient(cfg)
		if err != nil {
			t.Fatalf("NewClient: %v", err)
		}
		return c
	}
	hub := mk(1)
	near := mk(2)
	far := mk(3)
	for i := 0; i < 300; i++ {
		if _, err := hub.Observe("near", 20, near.Coordinate(), near.Error()); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if _, err := near.Observe("hub", 20, hub.Coordinate(), hub.Error()); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if _, err := hub.Observe("far", 200, far.Coordinate(), far.Error()); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if _, err := far.Observe("hub", 200, hub.Coordinate(), hub.Error()); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	got, err := Nearest(hub.Coordinate(), []Candidate{
		{ID: "far", Coord: far.Coordinate()},
		{ID: "near", Coord: near.Coordinate()},
	}, 1)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if got[0].ID != "near" {
		t.Fatalf("selected %s, want near", got[0].ID)
	}
	if math.Abs(got[0].EstimatedRTT-20) > 10 {
		t.Fatalf("estimate %v, want ~20", got[0].EstimatedRTT)
	}
}

// TestNearestMatchesFullSort pins the heap-based selection to the
// original full-stable-sort semantics, exactly — including input-order
// ties from duplicated coordinates.
func TestNearestMatchesFullSort(t *testing.T) {
	rng := xrand.NewStream(4242)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(60)
		candidates := make([]Candidate, n)
		for i := range candidates {
			// Draw from a tiny grid so exact-distance ties are common.
			candidates[i] = Candidate{
				ID:    fmt.Sprintf("c%d", i),
				Coord: c3(float64(rng.Intn(4)*10), float64(rng.Intn(4)*10), 0),
			}
		}
		from := c3(float64(rng.Intn(4)*10), 0, 0)
		k := 1 + rng.Intn(n+3)
		got, err := Nearest(from, candidates, k)
		if err != nil {
			t.Fatal(err)
		}
		want := fullSortNearest(from, candidates, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].EstimatedRTT != want[i].EstimatedRTT {
				t.Fatalf("trial %d rank %d: got %q@%v, want %q@%v",
					trial, i, got[i].ID, got[i].EstimatedRTT, want[i].ID, want[i].EstimatedRTT)
			}
		}
	}
}

// fullSortNearest is the pre-optimization O(n log n) implementation,
// kept as the reference for the equivalence test.
func fullSortNearest(from Coordinate, candidates []Candidate, k int) []Ranked {
	ranked := make([]Ranked, 0, len(candidates))
	for _, c := range candidates {
		d, err := from.DistanceTo(c.Coord)
		if err != nil {
			return nil
		}
		ranked = append(ranked, Ranked{Candidate: c, EstimatedRTT: d})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].EstimatedRTT < ranked[j].EstimatedRTT
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k]
}
