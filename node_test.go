package netcoord

import "testing"

func TestNodeConfigKeepsPartialClientConfig(t *testing.T) {
	// Regression: StartNode used to replace the whole Client config with
	// DefaultConfig when Dimension and Policy were both zero, silently
	// discarding every other user-set field. resolve fills per-field
	// defaults, so a partial config must keep what the user set.
	cfg := NodeConfig{
		ListenAddr: "127.0.0.1:0",
		Client: Config{
			MaxLinks:    7,
			Seed:        99,
			ErrorMargin: 1.5,
			CC:          0.1,
		},
	}
	ncfg, resolved, err := nodeConfig(cfg)
	if err != nil {
		t.Fatalf("nodeConfig: %v", err)
	}
	if resolved.MaxLinks != 7 {
		t.Fatalf("MaxLinks = %d, want 7 (user-set field discarded)", resolved.MaxLinks)
	}
	if resolved.Seed != 99 {
		t.Fatalf("Seed = %d, want 99", resolved.Seed)
	}
	if resolved.ErrorMargin != 1.5 {
		t.Fatalf("ErrorMargin = %v, want 1.5", resolved.ErrorMargin)
	}
	if resolved.CC != 0.1 {
		t.Fatalf("CC = %v, want 0.1", resolved.CC)
	}
	// Unset fields still resolve to the paper defaults.
	if resolved.Dimension != DefaultConfig().Dimension {
		t.Fatalf("Dimension = %d, want default %d", resolved.Dimension, DefaultConfig().Dimension)
	}
	if resolved.Policy != PolicyEnergy {
		t.Fatalf("Policy = %d, want PolicyEnergy", resolved.Policy)
	}
	// The derived Vivaldi config carries the user tuning too.
	if ncfg.Vivaldi.Seed != 99 || ncfg.Vivaldi.ErrorMargin != 1.5 || ncfg.Vivaldi.CC != 0.1 {
		t.Fatalf("vivaldi config dropped user fields: %+v", ncfg.Vivaldi)
	}
}

func TestNodeConfigDisableFilter(t *testing.T) {
	// DisableFilter alone (Dimension == 0, Policy == 0) used to be
	// swallowed by the DefaultConfig swap; the factory must now produce
	// pass-through filters.
	ncfg, resolved, err := nodeConfig(NodeConfig{Client: Config{DisableFilter: true}})
	if err != nil {
		t.Fatalf("nodeConfig: %v", err)
	}
	if !resolved.DisableFilter {
		t.Fatal("DisableFilter discarded")
	}
	f := ncfg.Filter()
	if est, ok := f.Observe(123); !ok || est != 123 {
		t.Fatalf("first observation = %v, %v; want pass-through 123, true", est, ok)
	}
}
