package main

import (
	"testing"

	"netcoord/internal/heuristic"
)

func TestParseFilter(t *testing.T) {
	tests := []struct {
		spec    string
		wantNil bool
		wantErr bool
	}{
		{spec: "mp"},
		{spec: "none", wantNil: true},
		{spec: "ewma:0.1"},
		{spec: "ewma:0.02"},
		{spec: "threshold:1000"},
		{spec: "ewma:bogus", wantErr: true},
		{spec: "ewma:2", wantErr: true},
		{spec: "threshold:-5", wantErr: true},
		{spec: "threshold:x", wantErr: true},
		{spec: "unknown", wantErr: true},
		{spec: "", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			f, err := parseFilter(tt.spec)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("parseFilter(%q) succeeded", tt.spec)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseFilter(%q): %v", tt.spec, err)
			}
			if tt.wantNil != (f == nil) {
				t.Fatalf("parseFilter(%q) nil=%v, want %v", tt.spec, f == nil, tt.wantNil)
			}
			if f != nil {
				// The factory must produce a working filter.
				if flt := f(); flt == nil {
					t.Fatal("factory returned nil filter")
				}
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	specs := []string{"direct", "energy", "relative", "system", "application", "centroid"}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			pf, err := parsePolicy(spec, heuristic.DefaultWindow, 0)
			if err != nil {
				t.Fatalf("parsePolicy(%q): %v", spec, err)
			}
			p, err := pf(3)
			if err != nil {
				t.Fatalf("policy factory: %v", err)
			}
			if p == nil {
				t.Fatal("nil policy")
			}
		})
	}
	if _, err := parsePolicy("bogus", 32, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestParsePolicyThresholdOverride(t *testing.T) {
	pf, err := parsePolicy("energy", 16, 42)
	if err != nil {
		t.Fatalf("parsePolicy: %v", err)
	}
	if _, err := pf(3); err != nil {
		t.Fatalf("factory with custom threshold: %v", err)
	}
	// Invalid threshold surfaces at construction.
	pf, err = parsePolicy("energy", 16, -1)
	if err != nil {
		t.Fatalf("parsePolicy: %v", err)
	}
	if _, err := pf(3); err == nil {
		t.Fatal("negative threshold accepted by factory")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run([]string{"-nodes", "12", "-seconds", "180", "-filter", "mp", "-policy", "energy"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-filter", "nope"}); err == nil {
		t.Fatal("bad filter accepted")
	}
	if err := run([]string{"-policy", "nope"}); err == nil {
		t.Fatal("bad policy accepted")
	}
	if err := run([]string{"-in", "/definitely/not/here.nctr"}); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
