// Command ncsim replays a latency trace — from a file written by ncgen
// or generated on the fly — through the trace-driven simulator with a
// chosen filter and application-update policy, and prints the paper's
// accuracy/stability metrics for both coordinate streams.
//
// Usage:
//
//	ncsim -nodes 64 -seconds 2400 -filter mp -policy energy
//	ncsim -in trace.nctr -nodes 269 -filter none -policy direct
//	ncsim -nodes 64 -filter ewma:0.10 -policy relative -threshold 0.3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncsim", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input trace file; empty generates on the fly")
		nodes      = fs.Int("nodes", 64, "number of hosts (must cover the trace's node ids)")
		seconds    = fs.Uint64("seconds", 2400, "generated trace duration (ignored with -in)")
		interval   = fs.Uint64("interval", 1, "generated per-node sampling period")
		seed       = fs.Uint64("seed", 20050502, "random seed")
		filterSpec = fs.String("filter", "mp", "filter: mp | none | ewma:<alpha> | threshold:<ms>")
		policySpec = fs.String("policy", "energy", "policy: direct | energy | relative | system | application | centroid")
		window     = fs.Int("window", heuristic.DefaultWindow, "change-detection window size")
		threshold  = fs.Float64("threshold", 0, "policy threshold (0 = paper default for the policy)")
		parallel   = fs.Int("parallel", 0, "simulator worker count (0 = GOMAXPROCS, 1 = sequential; results are bit-identical either way)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *interval < 1 {
		// The generator path validates this inside trace.GeneratorConfig,
		// but the -in path would otherwise divide by it below.
		return fmt.Errorf("interval %d, want >= 1", *interval)
	}

	factory, err := parseFilter(*filterSpec)
	if err != nil {
		return err
	}
	policy, err := parsePolicy(*policySpec, *window, *threshold)
	if err != nil {
		return err
	}

	var src trace.Source
	var duration uint64
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fmt.Errorf("open %s: %w", *in, err)
		}
		defer func() {
			_ = f.Close() // read-only
		}()
		r := trace.NewReader(f)
		src = r
		duration = 0 // learned from the runner afterwards
	} else {
		net, err := netsim.New(netsim.DefaultWideArea(*nodes, *seed))
		if err != nil {
			return err
		}
		gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
			IntervalTicks: *interval,
			DurationTicks: *seconds,
			Seed:          *seed + 1,
		})
		if err != nil {
			return err
		}
		src = gen
		duration = *seconds
	}

	vcfg := vivaldi.DefaultConfig()
	vcfg.Seed = *seed + 2
	runner, err := sim.NewRunner(sim.Config{
		Nodes:                  *nodes,
		Vivaldi:                vcfg,
		Filter:                 factory,
		Policy:                 policy,
		Parallelism:            *parallel, // 0 = GOMAXPROCS, resolved by Run
		ExpectedTicks:          duration,
		ExpectedSamplesPerNode: int(duration / *interval),
	})
	if err != nil {
		return err
	}
	if err := runner.Run(src); err != nil {
		return err
	}
	if rd, ok := src.(*trace.Reader); ok {
		if err := rd.Err(); err != nil {
			return err
		}
	}
	if duration == 0 {
		duration = runner.LastTick()
	}
	from := duration / 2

	fmt.Printf("processed %d samples (%d lost), last tick %d\n", runner.Samples(), runner.Lost(), runner.LastTick())
	fmt.Printf("measurement window: [%d, %d] (second half, per the paper)\n\n", from, duration)

	sys, err := runner.Sys().Summarize(from, duration)
	if err != nil {
		return err
	}
	app, err := runner.App().Summarize(from, duration)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %-14s %-14s %-14s %-12s\n", "stream", "med rel err", "p95 rel err", "instability", "updates/s")
	fmt.Printf("%-22s %-14.4f %-14.4f %-14.2f %-12.3f\n", "system-level (cs)",
		sys.MedianRelErr, sys.P95RelErrMedian, sys.MedianInstability, sys.MeanUpdateFraction)
	fmt.Printf("%-22s %-14.4f %-14.4f %-14.2f %-12.3f\n", "application-level (ca)",
		app.MedianRelErr, app.P95RelErrMedian, app.MedianInstability, app.MeanUpdateFraction)
	return nil
}

// parseFilter builds a filter factory from its CLI spec.
func parseFilter(spec string) (filter.Factory, error) {
	switch {
	case spec == "mp":
		return func() filter.Filter {
			f, err := filter.NewMP(filter.DefaultMPConfig())
			if err != nil {
				return filter.NewNone()
			}
			return f
		}, nil
	case spec == "none":
		return nil, nil
	case strings.HasPrefix(spec, "ewma:"):
		alpha, err := strconv.ParseFloat(strings.TrimPrefix(spec, "ewma:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad ewma alpha: %w", err)
		}
		if _, err := filter.NewEWMA(alpha); err != nil {
			return nil, err
		}
		return func() filter.Filter {
			f, err := filter.NewEWMA(alpha)
			if err != nil {
				return filter.NewNone()
			}
			return f
		}, nil
	case strings.HasPrefix(spec, "threshold:"):
		cutoff, err := strconv.ParseFloat(strings.TrimPrefix(spec, "threshold:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad threshold cutoff: %w", err)
		}
		if _, err := filter.NewThreshold(cutoff); err != nil {
			return nil, err
		}
		return func() filter.Filter {
			f, err := filter.NewThreshold(cutoff)
			if err != nil {
				return filter.NewNone()
			}
			return f
		}, nil
	default:
		return nil, fmt.Errorf("unknown filter %q", spec)
	}
}

// parsePolicy builds a policy factory from its CLI spec.
func parsePolicy(spec string, window int, threshold float64) (sim.PolicyFactory, error) {
	def := func(v float64) float64 {
		if threshold != 0 {
			return threshold
		}
		return v
	}
	switch spec {
	case "direct":
		return func(dim int) (heuristic.Policy, error) { return heuristic.NewDirect(dim) }, nil
	case "energy":
		tau := def(heuristic.DefaultEnergyTau)
		return func(dim int) (heuristic.Policy, error) { return heuristic.NewEnergy(dim, window, tau) }, nil
	case "relative":
		eps := def(heuristic.DefaultRelativeEpsilon)
		return func(dim int) (heuristic.Policy, error) { return heuristic.NewRelative(dim, window, eps) }, nil
	case "system":
		tau := def(16)
		return func(dim int) (heuristic.Policy, error) { return heuristic.NewSystem(dim, tau) }, nil
	case "application":
		tau := def(16)
		return func(dim int) (heuristic.Policy, error) { return heuristic.NewApplication(dim, tau) }, nil
	case "centroid":
		tau := def(16)
		return func(dim int) (heuristic.Policy, error) {
			return heuristic.NewApplicationCentroid(dim, window, tau)
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", spec)
	}
}
