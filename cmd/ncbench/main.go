// Command ncbench regenerates every table and figure in the paper's
// evaluation, rendering the full experiment output (the rows/series the
// paper plots) to stdout or a file. EXPERIMENTS.md is produced from this
// tool's output.
//
// Usage:
//
//	ncbench                        # every experiment, quick scale
//	ncbench -scale paper           # the paper's 269-node 4-hour scale
//	ncbench -only fig13,fig14      # a subset
//	ncbench -out results.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"netcoord/internal/experiments"
)

// renderer is the common experiment output contract.
type renderer interface {
	Render() string
}

// experiment couples an id with its runner.
type experiment struct {
	id  string
	run func(experiments.Scale) (renderer, error)
}

// wrap adapts a typed experiment constructor to the renderer interface.
func wrap[T renderer](f func(experiments.Scale) (T, error)) func(experiments.Scale) (renderer, error) {
	return func(s experiments.Scale) (renderer, error) {
		r, err := f(s)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

func allExperiments() []experiment {
	return []experiment{
		{id: "fig2", run: wrap(experiments.Fig02RawLatencyHistogram)},
		{id: "fig3", run: wrap(experiments.Fig03SingleLinkDistribution)},
		{id: "fig4", run: wrap(experiments.Fig04HistorySizeSweep)},
		{id: "fig5", run: wrap(experiments.Fig05FilterCDFs)},
		{id: "table1", run: wrap(experiments.Table1FilterComparison)},
		{id: "fig6", run: wrap(experiments.Fig06ConfidenceBuilding)},
		{id: "fig7", run: wrap(experiments.Fig07CoordinateDrift)},
		{id: "fig8", run: wrap(experiments.Fig08ThresholdSweep)},
		{id: "fig9", run: wrap(experiments.Fig09WindowSizeSweep)},
		{id: "fig10", run: wrap(experiments.Fig10HeuristicComparison)},
		{id: "fig11", run: wrap(experiments.Fig11AppLevelCDFs)},
		{id: "fig12", run: wrap(experiments.Fig12ApplicationCentroid)},
		{id: "fig13", run: wrap(experiments.Fig13PlanetLabComparison)},
		{id: "fig14", run: wrap(experiments.Fig14ConvergenceTimeline)},
		{id: "a1", run: wrap(experiments.AblationStaticMatrix)},
		{id: "a2", run: wrap(experiments.AblationThresholdFilter)},
		{id: "a3", run: wrap(experiments.AblationDampedVivaldi)},
		{id: "a4", run: wrap(experiments.AblationFilterWarmup)},
		{id: "e1", run: wrap(experiments.ExtensionDetectorComparison)},
		{id: "e2", run: wrap(experiments.ExtensionChurnRobustness)},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ncbench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "experiment scale: quick | paper")
		only      = fs.String("only", "", "comma-separated experiment ids (default: all)")
		out       = fs.String("out", "", "output file (default: stdout)")
		list      = fs.Bool("list", false, "list experiment ids and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	exps := allExperiments()
	if *list {
		for _, e := range exps {
			fmt.Println(e.id)
		}
		return nil
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "paper":
		scale = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}

	selected := exps
	if *only != "" {
		want := map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
		selected = selected[:0:0]
		for _, e := range exps {
			if want[e.id] {
				selected = append(selected, e)
				delete(want, e.id)
			}
		}
		if len(want) > 0 {
			return fmt.Errorf("unknown experiment ids: %v (use -list)", keys(want))
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return fmt.Errorf("create %s: %w", *out, ferr)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	fmt.Fprintf(w, "netcoord experiment suite — scale %s (%d nodes, %d s, %d s interval)\n\n",
		*scaleName, scale.Nodes, scale.DurationTicks, scale.IntervalTicks)
	for _, e := range selected {
		started := time.Now()
		r, rerr := e.run(scale)
		if rerr != nil {
			return fmt.Errorf("%s: %w", e.id, rerr)
		}
		fmt.Fprintf(w, "[%s] (%.1fs)\n%s\n", e.id, time.Since(started).Seconds(), r.Render())
	}
	return nil
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
