package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExperimentsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range allExperiments() {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.run == nil {
			t.Fatalf("experiment %q has no runner", e.id)
		}
	}
	// Every figure/table from the paper plus the four ablations and the
	// extension.
	want := []string{
		"fig2", "fig3", "fig4", "fig5", "table1", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"a1", "a2", "a3", "a4", "e1", "e2",
	}
	for _, id := range want {
		if !seen[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(seen) != len(want) {
		t.Errorf("have %d experiments, want %d", len(seen), len(want))
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "galactic"}); err == nil {
		t.Fatal("unknown scale accepted")
	}
	if err := run([]string{"-only", "fig999"}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
	if err := run([]string{"-out", "/no/such/dir/results.txt", "-only", "fig2"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

func TestRunSubsetToFile(t *testing.T) {
	// fig2 is the cheapest experiment; quick scale keeps this test
	// meaningful but fast.
	out := filepath.Join(t.TempDir(), "results.txt")
	if err := run([]string{"-only", "fig2", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read results: %v", err)
	}
	text := string(data)
	if !strings.Contains(text, "Figure 2") {
		t.Fatalf("results missing Figure 2 section:\n%s", text)
	}
	if !strings.Contains(text, "fraction >= 1s") {
		t.Fatal("results missing calibration line")
	}
}
