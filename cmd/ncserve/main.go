// Command ncserve exposes a coordinate Registry as an HTTP JSON service:
// a deployable proximity oracle. Nodes (or a bridge from your coordinate
// gossip) POST their application-level coordinates in; clients ask
// "nearest k nodes to this coordinate", "RTT between these two nodes",
// or "who is inside my latency budget".
//
//	ncserve -listen 127.0.0.1:8700 -ttl 5m
//
// Endpoints (all JSON):
//
//	POST /upsert   {"id":"n1","coord":{"vec":[1,2,3]},"error":0.3}
//	               or {"entries":[{...},{...}]} for batches
//	POST /remove   {"id":"n1"}
//	POST /nearest  {"coord":{"vec":[1,2,3]},"k":8}
//	GET  /nearest?id=n1&k=8            (centered on a registered node)
//	GET  /estimate?a=n1&b=n2
//	GET  /stats
//
// A TTL (with the -ttl flag) makes the registry self-cleaning: nodes
// that stop refreshing their coordinate age out instead of attracting
// traffic forever.
//
// With -data-dir the registry is persistent: every mutation is
// appended to a write-ahead log in that directory and compacted into a
// snapshot every -snapshot-interval, so a restarted ncserve comes back
// warm — serving the pre-restart entries with their update times
// preserved — instead of empty. A graceful shutdown (SIGINT/SIGTERM)
// flushes the log before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"netcoord"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncserve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ncserve", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8700", "HTTP listen address")
		dim          = fs.Int("dim", 0, "coordinate dimension (0 = library default, 3)")
		shards       = fs.Int("shards", 0, "registry shard count (0 = default)")
		ttl          = fs.Duration("ttl", 0, "evict entries not refreshed within this duration (0 = keep forever)")
		maxBody      = fs.Int64("max-body", 1<<20, "maximum request body size in bytes")
		dataDir      = fs.String("data-dir", "", "persist the registry (WAL + snapshots) in this directory; empty = in-memory only")
		snapInterval = fs.Duration("snapshot-interval", netcoord.DefaultSnapshotInterval, "how often the WAL is compacted into a snapshot (with -data-dir)")
		flushEvery   = fs.Duration("flush-interval", 0, "WAL group-commit window (0 = 50ms; with -data-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	regCfg := netcoord.RegistryConfig{
		Dimension: *dim,
		Shards:    *shards,
		TTL:       *ttl,
	}
	var (
		reg *netcoord.Registry
		pr  *netcoord.PersistentRegistry
	)
	if *dataDir != "" {
		// No `:=` / shadowed error anywhere in this block: the deferred
		// close below must write run's NAMED return, so a failed final
		// flush fails the process — exiting 0 after losing the last
		// commit window would tell supervisors the documented "graceful
		// shutdown loses nothing" guarantee held when it did not.
		pr, err = netcoord.OpenPersistentRegistry(netcoord.PersistentRegistryConfig{
			Registry:         regCfg,
			Dir:              *dataDir,
			SnapshotInterval: *snapInterval,
			FlushInterval:    *flushEvery,
		})
		if err != nil {
			return err
		}
		reg = pr.Registry
		defer func() {
			if cerr := pr.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("persistence shutdown: %w", cerr)
			}
		}()
		rec := pr.Recovery()
		fmt.Printf("ncserve recovered %d entries from %s (snapshot gen %d: %d entries, %d WAL records replayed, %d torn bytes dropped)\n",
			rec.Entries, *dataDir, rec.SnapshotGen, rec.SnapshotEntries, rec.WALRecords, rec.TornBytes)
	} else {
		reg, err = netcoord.NewRegistry(regCfg)
		if err != nil {
			return err
		}
		defer reg.Close()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           newServer(reg, pr, *maxBody),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	// Register the handler before announcing the address: anyone who
	// read the listen line may immediately send the graceful-shutdown
	// signal, which must never hit the default (no-flush) action.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("ncserve listening on http://%s (ttl %v)\n", ln.Addr(), *ttl)

	select {
	case err := <-errCh:
		return err
	case <-sigCh:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server wires a Registry to the HTTP surface.
type server struct {
	reg *netcoord.Registry
	// persist is non-nil when the registry is disk-backed; /stats then
	// reports recovery and WAL counters alongside the registry's.
	persist *netcoord.PersistentRegistry
	started time.Time
	maxBody int64
}

// newServer builds the HTTP handler around a registry (persistent or
// not; pr may be nil). Split from run so tests can drive it with
// httptest.
func newServer(reg *netcoord.Registry, pr *netcoord.PersistentRegistry, maxBody int64) http.Handler {
	s := &server{reg: reg, persist: pr, started: time.Now(), maxBody: maxBody}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /upsert", s.handleUpsert)
	mux.HandleFunc("POST /remove", s.handleRemove)
	mux.HandleFunc("GET /nearest", s.handleNearestGet)
	mux.HandleFunc("POST /nearest", s.handleNearestPost)
	mux.HandleFunc("GET /estimate", s.handleEstimate)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// upsertRequest accepts a single entry, a batch, or both.
type upsertRequest struct {
	ID      string              `json:"id"`
	Coord   netcoord.Coordinate `json:"coord"`
	Error   float64             `json:"error"`
	Entries []upsertEntry       `json:"entries"`
}

type upsertEntry struct {
	ID    string              `json:"id"`
	Coord netcoord.Coordinate `json:"coord"`
	Error float64             `json:"error"`
}

type rankedJSON struct {
	ID           string              `json:"id"`
	Coord        netcoord.Coordinate `json:"coord"`
	EstimatedRTT float64             `json:"estimated_rtt_ms"`
}

func toRankedJSON(rs []netcoord.Ranked) []rankedJSON {
	out := make([]rankedJSON, len(rs))
	for i, r := range rs {
		out[i] = rankedJSON{ID: r.ID, Coord: r.Coord, EstimatedRTT: r.EstimatedRTT}
	}
	return out
}

func (s *server) handleUpsert(w http.ResponseWriter, req *http.Request) {
	var body upsertRequest
	if !s.decode(w, req, &body) {
		return
	}
	// Fold the single-entry form into the batch so the whole request is
	// one atomic UpsertBatch: a 400 always means nothing was applied.
	batch := make([]netcoord.RegistryEntry, 0, len(body.Entries)+1)
	if body.ID != "" {
		batch = append(batch, netcoord.RegistryEntry{ID: body.ID, Coord: body.Coord, Error: body.Error})
	}
	for _, e := range body.Entries {
		batch = append(batch, netcoord.RegistryEntry{ID: e.ID, Coord: e.Coord, Error: e.Error})
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no id or entries in request"))
		return
	}
	if err := s.reg.UpsertBatch(batch); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{"applied": len(batch), "entries": s.reg.Len()}
	s.flagDegraded(resp)
	writeJSON(w, http.StatusOK, resp)
}

// flagDegraded marks a mutation response when persistence has failed:
// the mutation was applied in memory but is no longer being logged, so
// writers must not believe the durability contract still holds just
// because they got a 200.
func (s *server) flagDegraded(resp map[string]any) {
	if s.persist == nil {
		return
	}
	if err := s.persist.Err(); err != nil {
		resp["persistence_degraded"] = err.Error()
	}
}

func (s *server) handleRemove(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID string `json:"id"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if body.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("no id in request"))
		return
	}
	resp := map[string]any{"removed": s.reg.Remove(body.ID)}
	s.flagDegraded(resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleNearestGet answers proximity queries centered on a registered
// node: /nearest?id=n1&k=8, or radius mode with &radius_ms=50.
func (s *server) handleNearestGet(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing id parameter (POST a coordinate for coordinate-centered queries)"))
		return
	}
	if radiusStr := req.URL.Query().Get("radius_ms"); radiusStr != "" {
		radius, err := strconv.ParseFloat(radiusStr, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad radius_ms: %w", err))
			return
		}
		entry, ok := s.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown id %q", id))
			return
		}
		// Bounded like k-mode: +1 slack for the excluded center, +1 to
		// detect truncation.
		res, err := s.reg.WithinLimit(entry.Coord, radius, maxK+2)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Consistent with k-mode: the center node is not its own peer.
		filtered := res[:0]
		for _, rk := range res {
			if rk.ID != id {
				filtered = append(filtered, rk)
			}
		}
		truncated := len(filtered) > maxK
		if truncated {
			filtered = filtered[:maxK]
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(filtered), "truncated": truncated})
		return
	}
	k, ok := parseK(w, req.URL.Query().Get("k"))
	if !ok {
		return
	}
	res, err := s.reg.NearestTo(id, k)
	if errors.Is(err, netcoord.ErrUnknownID) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res)})
}

// handleNearestPost answers proximity queries centered on an arbitrary
// coordinate — the "nearest replicas to this client" call for clients
// that are not registered themselves.
func (s *server) handleNearestPost(w http.ResponseWriter, req *http.Request) {
	var body struct {
		Coord    netcoord.Coordinate `json:"coord"`
		K        int                 `json:"k"`
		RadiusMS *float64            `json:"radius_ms"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if body.RadiusMS != nil {
		res, err := s.reg.WithinLimit(body.Coord, *body.RadiusMS, maxK+1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		truncated := len(res) > maxK
		if truncated {
			res = res[:maxK]
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res), "truncated": truncated})
		return
	}
	k := body.K
	if k == 0 {
		k = defaultK
	}
	if k < 1 || k > maxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be an integer in [1, %d]", maxK))
		return
	}
	res, err := s.reg.Nearest(body.Coord, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res)})
}

func (s *server) handleEstimate(w http.ResponseWriter, req *http.Request) {
	a, b := req.URL.Query().Get("a"), req.URL.Query().Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing a or b parameter"))
		return
	}
	d, err := s.reg.Estimate(a, b)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"a": a, "b": b, "rtt_ms": d})
}

func (s *server) handleStats(w http.ResponseWriter, req *http.Request) {
	body := map[string]any{
		"registry":       s.reg.Stats(),
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	if s.persist != nil {
		body["persistence"] = map[string]any{
			"recovery": s.persist.Recovery(),
			"store":    s.persist.PersistStats(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// defaultK is the k used when a nearest query does not specify one.
const defaultK = 8

// maxK bounds a single query's result size so one request cannot ask
// the service to rank the whole registry.
const maxK = 1024

func parseK(w http.ResponseWriter, raw string) (int, bool) {
	if raw == "" {
		return defaultK, true
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 || k > maxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be an integer in [1, %d]", maxK))
		return 0, false
	}
	return k, true
}

// decode reads a bounded JSON body, rejecting unknown fields.
func (s *server) decode(w http.ResponseWriter, req *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
