// Command ncserve exposes a coordinate Registry as an HTTP JSON service:
// a deployable proximity oracle. Nodes (or a bridge from your coordinate
// gossip) POST their application-level coordinates in; clients ask
// "nearest k nodes to this coordinate", "RTT between these two nodes",
// or "who is inside my latency budget".
//
//	ncserve -listen 127.0.0.1:8700 -ttl 5m
//
// Endpoints (all JSON; implemented in internal/server):
//
//	POST /upsert   {"id":"n1","coord":{"vec":[1,2,3]},"error":0.3}
//	               or {"entries":[{...},{...}]} for batches
//	POST /remove   {"id":"n1"}
//	POST /nearest  {"coord":{"vec":[1,2,3]},"k":8}
//	POST /nearest/batch  {"queries":[{"coord":...,"k":8},...]}
//	               (many queries, one shard-major registry dispatch)
//	GET  /nearest?id=n1&k=8            (centered on a registered node)
//	GET  /estimate?a=n1&b=n2
//	GET  /snapshot                     (full state + stream sequence)
//	GET  /snapshot?since=N             (delta: entries changed since N)
//	GET  /changes?since=N&wait=10s     (sequenced mutation tail)
//	GET  /watch?id=n1&k=8              (SSE nearest-set deltas)
//	GET  /stats
//	GET  /healthz                      (readiness; followers 503 past -max-lag)
//	GET  /metrics                      (Prometheus text exposition)
//
// With -debug-addr ncserve additionally serves net/http/pprof and
// expvar on a separate listener. That listener can dump heap contents
// and must never be exposed publicly — bind it to loopback or a
// management network.
//
// Every mutation is sequenced into a change stream. /changes tails it:
// pass the sequence you hold (mutation responses, /stats, and
// /snapshot all report one) and receive everything after it, long-
// polling up to wait when the stream is quiet; a 410 means the range
// was compacted away and you must re-bootstrap from /snapshot —
// /snapshot?since=<your seq> returns just the entries changed since
// then when the server still holds enough history to prove coverage.
// /watch turns the stream into nearest-set pushes: subscribe with a
// coordinate (or registered id) and k, get the initial top-k, then a
// delta only when the top-k membership or order actually changes —
// stable application-level coordinates make those pushes rare, which
// is the point of pushing rather than polling. All watchers share one
// internal subscription through a spatial damage map, so watcher count
// does not multiply the per-mutation work.
//
// A TTL (with the -ttl flag) makes the registry self-cleaning: nodes
// that stop refreshing their coordinate age out instead of attracting
// traffic forever.
//
// With -data-dir the registry is persistent: every mutation is
// appended to a write-ahead log in that directory and compacted into a
// snapshot every -snapshot-interval (or sooner when the WAL outgrows
// -compact-wal-bytes / -compact-wal-records), so a restarted ncserve
// comes back warm — serving the pre-restart entries with their update
// times preserved — instead of empty. A graceful shutdown
// (SIGINT/SIGTERM) flushes the log before exiting. The WAL doubles as
// deep /changes history, so resumers can reach back past the in-memory
// ring.
//
// With -upstreams=<url,url,...> (or the single-upstream alias
// -follow=<url>) ncserve runs as a read-only replica: it bootstraps
// from the first live upstream's /snapshot, tails its /changes stream,
// and serves the full read surface locally — including /changes,
// /watch, and /snapshot, re-served in the leader's own sequence
// numbers — with replication lag reported in /stats and disclosed on
// every read via the X-NC-Staleness and X-NC-Lag headers. Replicas
// therefore absorb stream fan-out, and chain: a follower can follow a
// follower, forming a relay tree with the leader at the root. Mutation
// endpoints return 403 in this mode.
//
// Failover: when the tailed upstream dies, the replica rotates through
// the -upstreams list with jittered exponential backoff, resuming from
// its applied sequence — the whole tree shares one sequence space, so
// any replica of the same stream can become its parent mid-stream.
// POST /promote turns a replica into the leader: its fencing epoch is
// bumped, the mutation surface opens, and anything the deposed leader
// still writes is rejected (rejected_stale_epoch in /stats) by every
// tier that followed the promotion.
package main

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on http.DefaultServeMux for -debug-addr
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on http.DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netcoord"
	"netcoord/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncserve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ncserve", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8700", "HTTP listen address")
		dim          = fs.Int("dim", 0, "coordinate dimension (0 = library default, 3)")
		shards       = fs.Int("shards", 0, "registry shard count (0 = default)")
		ttl          = fs.Duration("ttl", 0, "evict entries not refreshed within this duration (0 = keep forever)")
		maxBody      = fs.Int64("max-body", 1<<20, "maximum request body size in bytes")
		dataDir      = fs.String("data-dir", "", "persist the registry (WAL + snapshots) in this directory; empty = in-memory only")
		snapInterval = fs.Duration("snapshot-interval", netcoord.DefaultSnapshotInterval, "how often the WAL is compacted into a snapshot (with -data-dir)")
		flushEvery   = fs.Duration("flush-interval", 0, "WAL group-commit window (0 = 50ms; with -data-dir)")
		compactBytes = fs.Int64("compact-wal-bytes", 0, "also compact when the active WAL exceeds this many bytes (0 = default, negative = timer only; with -data-dir)")
		compactRecs  = fs.Int64("compact-wal-records", 0, "also compact when the active WAL exceeds this many records (0 = default, negative = timer only; with -data-dir)")
		streamBuffer = fs.Int("change-buffer", netcoord.DefaultChangeStreamBuffer, "change-stream ring size: how many recent mutations /changes can serve from memory (in -follow mode, the relay ring)")
		follow       = fs.String("follow", "", "run as a read-only replica of this upstream ncserve URL (single-upstream alias for -upstreams)")
		upstreams    = fs.String("upstreams", "", "comma-separated ordered list of upstream ncserve URLs to replicate from; the first is preferred, the rest are failover targets")
		maxLag       = fs.Uint64("max-lag", 0, "follower readiness bound: /healthz answers 503 when replication lag exceeds this many events (0 = default)")
		noBinStream  = fs.Bool("no-binary-stream", false, "replicate over plain JSON instead of negotiating the binary change-frame encoding with the upstream (with -follow/-upstreams)")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address; bind to loopback only — this listener must never be exposed publicly")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	regCfg := netcoord.RegistryConfig{
		Dimension:          *dim,
		Shards:             *shards,
		TTL:                *ttl,
		ChangeStreamBuffer: *streamBuffer,
	}
	var upstreamList []string
	if *follow != "" {
		upstreamList = append(upstreamList, *follow)
	}
	for _, u := range strings.Split(*upstreams, ",") {
		if u = strings.TrimSpace(u); u != "" {
			upstreamList = append(upstreamList, u)
		}
	}

	srvCfg := server.Config{MaxBody: *maxBody, MaxLag: *maxLag}
	switch {
	case len(upstreamList) > 0:
		if *dataDir != "" {
			return errors.New("-follow/-upstreams and -data-dir are mutually exclusive: a follower's durable state is the leader's")
		}
		if *ttl != 0 {
			return errors.New("-follow/-upstreams and -ttl are mutually exclusive: evictions are the leader's decision and arrive through the stream")
		}
		follower, ferr := netcoord.StartFollower(netcoord.FollowerConfig{
			Upstreams:           upstreamList,
			Registry:            regCfg,
			DisableBinaryStream: *noBinStream,
		})
		if ferr != nil {
			return ferr
		}
		defer follower.Close()
		srvCfg.Registry = follower.Registry
		srvCfg.Source = follower
		srvCfg.Follower = follower
		st := follower.FollowerStats()
		fmt.Printf("ncserve following %s (bootstrapped %d entries at seq %d, %d failover targets)\n",
			st.LeaderURL, follower.Len(), st.AppliedSeq, len(upstreamList)-1)
	case *dataDir != "":
		// No `:=` / shadowed error anywhere in this block: the deferred
		// close below must write run's NAMED return, so a failed final
		// flush fails the process — exiting 0 after losing the last
		// commit window would tell supervisors the documented "graceful
		// shutdown loses nothing" guarantee held when it did not.
		var pr *netcoord.PersistentRegistry
		pr, err = netcoord.OpenPersistentRegistry(netcoord.PersistentRegistryConfig{
			Registry:          regCfg,
			Dir:               *dataDir,
			SnapshotInterval:  *snapInterval,
			FlushInterval:     *flushEvery,
			CompactWALBytes:   *compactBytes,
			CompactWALRecords: *compactRecs,
		})
		if err != nil {
			return err
		}
		defer func() {
			if cerr := pr.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("persistence shutdown: %w", cerr)
			}
		}()
		srvCfg.Registry = pr.Registry
		srvCfg.Source = pr
		srvCfg.Persist = pr
		rec := pr.Recovery()
		fmt.Printf("ncserve recovered %d entries from %s (snapshot gen %d: %d entries, %d WAL records replayed, %d torn bytes dropped, stream seq %d)\n",
			rec.Entries, *dataDir, rec.SnapshotGen, rec.SnapshotEntries, rec.WALRecords, rec.TornBytes, rec.LastSeq)
	default:
		reg, rerr := netcoord.NewRegistry(regCfg)
		if rerr != nil {
			return rerr
		}
		defer reg.Close()
		srvCfg.Registry = reg
		srvCfg.Source = reg
	}

	if *debugAddr != "" {
		// pprof and expvar self-register on http.DefaultServeMux, which
		// the main mux never serves: profiling gets its own socket so
		// exposing the service never exposes the debug surface. The
		// operator is expected to bind this to loopback (or a management
		// network) — pprof handlers can dump heap contents.
		dln, derr := net.Listen("tcp", *debugAddr)
		if derr != nil {
			return derr
		}
		dbg := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 5 * time.Second}
		go func() { _ = dbg.Serve(dln) }()
		defer dbg.Close()
		fmt.Printf("ncserve debug endpoints (pprof, expvar) on http://%s — never expose publicly\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	handler := server.New(srvCfg)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	// Register the handler before announcing the address: anyone who
	// read the listen line may immediately send the graceful-shutdown
	// signal, which must never hit the default (no-flush) action.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("ncserve listening on http://%s (ttl %v)\n", ln.Addr(), *ttl)

	select {
	case err := <-errCh:
		return err
	case <-sigCh:
	}
	// Wake the long-lived /watch and /changes handlers first:
	// srv.Shutdown does not cancel in-flight request contexts, so
	// without this a single SSE subscriber would ride out the shutdown
	// timeout and turn every graceful stop into a deadline error.
	handler.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
