// Command ncserve exposes a coordinate Registry as an HTTP JSON service:
// a deployable proximity oracle. Nodes (or a bridge from your coordinate
// gossip) POST their application-level coordinates in; clients ask
// "nearest k nodes to this coordinate", "RTT between these two nodes",
// or "who is inside my latency budget".
//
//	ncserve -listen 127.0.0.1:8700 -ttl 5m
//
// Endpoints (all JSON):
//
//	POST /upsert   {"id":"n1","coord":{"vec":[1,2,3]},"error":0.3}
//	               or {"entries":[{...},{...}]} for batches
//	POST /remove   {"id":"n1"}
//	POST /nearest  {"coord":{"vec":[1,2,3]},"k":8}
//	GET  /nearest?id=n1&k=8            (centered on a registered node)
//	GET  /estimate?a=n1&b=n2
//	GET  /snapshot                     (full state + stream sequence)
//	GET  /changes?since=N&wait=10s     (sequenced mutation tail)
//	GET  /watch?id=n1&k=8              (SSE nearest-set deltas)
//	GET  /stats
//
// Every mutation is sequenced into a change stream. /changes tails it:
// pass the sequence you hold (mutation responses, /stats, and
// /snapshot all report one) and receive everything after it, long-
// polling up to wait when the stream is quiet; a 410 means the range
// was compacted away and you must re-bootstrap from /snapshot. /watch
// turns the stream into nearest-set pushes: subscribe with a
// coordinate (or registered id) and k, get the initial top-k, then a
// delta only when the top-k membership or order actually changes —
// stable application-level coordinates make those pushes rare, which
// is the point of pushing rather than polling.
//
// A TTL (with the -ttl flag) makes the registry self-cleaning: nodes
// that stop refreshing their coordinate age out instead of attracting
// traffic forever.
//
// With -data-dir the registry is persistent: every mutation is
// appended to a write-ahead log in that directory and compacted into a
// snapshot every -snapshot-interval (or sooner when the WAL outgrows
// -compact-wal-bytes / -compact-wal-records), so a restarted ncserve
// comes back warm — serving the pre-restart entries with their update
// times preserved — instead of empty. A graceful shutdown
// (SIGINT/SIGTERM) flushes the log before exiting. The WAL doubles as
// deep /changes history, so resumers can reach back past the in-memory
// ring.
//
// With -follow=<leader-url> ncserve runs as a read-only replica: it
// bootstraps from the leader's /snapshot, tails its /changes stream,
// and serves Nearest/Estimate/Within locally with replication lag
// reported in /stats. Mutation endpoints return 403 in this mode.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"netcoord"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncserve: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("ncserve", flag.ContinueOnError)
	var (
		listen       = fs.String("listen", "127.0.0.1:8700", "HTTP listen address")
		dim          = fs.Int("dim", 0, "coordinate dimension (0 = library default, 3)")
		shards       = fs.Int("shards", 0, "registry shard count (0 = default)")
		ttl          = fs.Duration("ttl", 0, "evict entries not refreshed within this duration (0 = keep forever)")
		maxBody      = fs.Int64("max-body", 1<<20, "maximum request body size in bytes")
		dataDir      = fs.String("data-dir", "", "persist the registry (WAL + snapshots) in this directory; empty = in-memory only")
		snapInterval = fs.Duration("snapshot-interval", netcoord.DefaultSnapshotInterval, "how often the WAL is compacted into a snapshot (with -data-dir)")
		flushEvery   = fs.Duration("flush-interval", 0, "WAL group-commit window (0 = 50ms; with -data-dir)")
		compactBytes = fs.Int64("compact-wal-bytes", 0, "also compact when the active WAL exceeds this many bytes (0 = default, negative = timer only; with -data-dir)")
		compactRecs  = fs.Int64("compact-wal-records", 0, "also compact when the active WAL exceeds this many records (0 = default, negative = timer only; with -data-dir)")
		streamBuffer = fs.Int("change-buffer", netcoord.DefaultChangeStreamBuffer, "change-stream ring size: how many recent mutations /changes can serve from memory")
		follow       = fs.String("follow", "", "run as a read-only replica of this leader ncserve URL (e.g. http://10.0.0.1:8700)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	regCfg := netcoord.RegistryConfig{
		Dimension:          *dim,
		Shards:             *shards,
		TTL:                *ttl,
		ChangeStreamBuffer: *streamBuffer,
	}
	var (
		reg      *netcoord.Registry
		pr       *netcoord.PersistentRegistry
		follower *netcoord.FollowerRegistry
	)
	switch {
	case *follow != "":
		if *dataDir != "" {
			return errors.New("-follow and -data-dir are mutually exclusive: a follower's durable state is the leader's")
		}
		if *ttl != 0 {
			return errors.New("-follow and -ttl are mutually exclusive: evictions are the leader's decision and arrive through the stream")
		}
		follower, err = netcoord.StartFollower(netcoord.FollowerConfig{
			LeaderURL: *follow,
			Registry:  regCfg,
		})
		if err != nil {
			return err
		}
		reg = follower.Registry
		defer follower.Close()
		st := follower.FollowerStats()
		fmt.Printf("ncserve following %s (bootstrapped %d entries at seq %d)\n", *follow, reg.Len(), st.AppliedSeq)
	case *dataDir != "":
		// No `:=` / shadowed error anywhere in this block: the deferred
		// close below must write run's NAMED return, so a failed final
		// flush fails the process — exiting 0 after losing the last
		// commit window would tell supervisors the documented "graceful
		// shutdown loses nothing" guarantee held when it did not.
		pr, err = netcoord.OpenPersistentRegistry(netcoord.PersistentRegistryConfig{
			Registry:          regCfg,
			Dir:               *dataDir,
			SnapshotInterval:  *snapInterval,
			FlushInterval:     *flushEvery,
			CompactWALBytes:   *compactBytes,
			CompactWALRecords: *compactRecs,
		})
		if err != nil {
			return err
		}
		reg = pr.Registry
		defer func() {
			if cerr := pr.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("persistence shutdown: %w", cerr)
			}
		}()
		rec := pr.Recovery()
		fmt.Printf("ncserve recovered %d entries from %s (snapshot gen %d: %d entries, %d WAL records replayed, %d torn bytes dropped, stream seq %d)\n",
			rec.Entries, *dataDir, rec.SnapshotGen, rec.SnapshotEntries, rec.WALRecords, rec.TornBytes, rec.LastSeq)
	default:
		reg, err = netcoord.NewRegistry(regCfg)
		if err != nil {
			return err
		}
		defer reg.Close()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	handler := newServer(reg, pr, follower, *maxBody)
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	// Register the handler before announcing the address: anyone who
	// read the listen line may immediately send the graceful-shutdown
	// signal, which must never hit the default (no-flush) action.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	fmt.Printf("ncserve listening on http://%s (ttl %v)\n", ln.Addr(), *ttl)

	select {
	case err := <-errCh:
		return err
	case <-sigCh:
	}
	// Wake the long-lived /watch and /changes handlers first:
	// srv.Shutdown does not cancel in-flight request contexts, so
	// without this a single SSE subscriber would ride out the shutdown
	// timeout and turn every graceful stop into a deadline error.
	handler.stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// server wires a Registry to the HTTP surface.
type server struct {
	reg *netcoord.Registry
	// persist is non-nil when the registry is disk-backed; /stats then
	// reports recovery and WAL counters alongside the registry's, and
	// /changes reaches past the in-memory ring into the WAL.
	persist *netcoord.PersistentRegistry
	// follower is non-nil in -follow mode: mutation and stream
	// endpoints are disabled (403/501) and /stats reports replication
	// lag.
	follower *netcoord.FollowerRegistry
	started  time.Time
	maxBody  int64
	mux      *http.ServeMux
	// shutdown wakes long-lived handlers (/watch SSE, /changes
	// long-polls) at graceful stop; http.Server.Shutdown alone would
	// wait on them forever.
	shutdown     chan struct{}
	shutdownOnce sync.Once
}

// newServer builds the HTTP handler around a registry (persistent or
// follower variants optional). Split from run so tests can drive it
// with httptest.
func newServer(reg *netcoord.Registry, pr *netcoord.PersistentRegistry, follower *netcoord.FollowerRegistry, maxBody int64) *server {
	s := &server{
		reg:      reg,
		persist:  pr,
		follower: follower,
		started:  time.Now(),
		maxBody:  maxBody,
		mux:      http.NewServeMux(),
		shutdown: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /upsert", s.leaderOnly(s.handleUpsert))
	s.mux.HandleFunc("POST /remove", s.leaderOnly(s.handleRemove))
	s.mux.HandleFunc("GET /nearest", s.handleNearestGet)
	s.mux.HandleFunc("POST /nearest", s.handleNearestPost)
	s.mux.HandleFunc("GET /estimate", s.handleEstimate)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /changes", s.streamOnly(s.handleChanges))
	s.mux.HandleFunc("GET /watch", s.streamOnly(s.handleWatch))
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, req *http.Request) { s.mux.ServeHTTP(w, req) }

// stop wakes every long-lived handler; safe to call more than once.
func (s *server) stop() { s.shutdownOnce.Do(func() { close(s.shutdown) }) }

// leaderOnly rejects mutations on a follower: its state is a replica
// of the leader's, and a local write would silently diverge it.
func (s *server) leaderOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if s.follower != nil {
			writeError(w, http.StatusForbidden, fmt.Errorf("read-only replica of %s: send mutations to the leader", s.follower.FollowerStats().LeaderURL))
			return
		}
		h(w, req)
	}
}

// streamOnly rejects stream endpoints on a follower, which has no
// change stream of its own (its sequence space is the leader's — tail
// the leader directly, or bootstrap a chained replica from this
// follower's /snapshot).
func (s *server) streamOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if s.follower != nil {
			writeError(w, http.StatusNotImplemented, fmt.Errorf("replica has no change stream: tail the leader %s", s.follower.FollowerStats().LeaderURL))
			return
		}
		h(w, req)
	}
}

// upsertRequest accepts a single entry, a batch, or both.
type upsertRequest struct {
	ID      string              `json:"id"`
	Coord   netcoord.Coordinate `json:"coord"`
	Error   float64             `json:"error"`
	Entries []upsertEntry       `json:"entries"`
}

type upsertEntry struct {
	ID    string              `json:"id"`
	Coord netcoord.Coordinate `json:"coord"`
	Error float64             `json:"error"`
}

type rankedJSON struct {
	ID           string              `json:"id"`
	Coord        netcoord.Coordinate `json:"coord"`
	EstimatedRTT float64             `json:"estimated_rtt_ms"`
}

func toRankedJSON(rs []netcoord.Ranked) []rankedJSON {
	out := make([]rankedJSON, len(rs))
	for i, r := range rs {
		out[i] = rankedJSON{ID: r.ID, Coord: r.Coord, EstimatedRTT: r.EstimatedRTT}
	}
	return out
}

func (s *server) handleUpsert(w http.ResponseWriter, req *http.Request) {
	var body upsertRequest
	if !s.decode(w, req, &body) {
		return
	}
	// Fold the single-entry form into the batch so the whole request is
	// one atomic UpsertBatch: a 400 always means nothing was applied.
	batch := make([]netcoord.RegistryEntry, 0, len(body.Entries)+1)
	if body.ID != "" {
		batch = append(batch, netcoord.RegistryEntry{ID: body.ID, Coord: body.Coord, Error: body.Error})
	}
	for _, e := range body.Entries {
		batch = append(batch, netcoord.RegistryEntry{ID: e.ID, Coord: e.Coord, Error: e.Error})
	}
	if len(batch) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no id or entries in request"))
		return
	}
	if err := s.reg.UpsertBatch(batch); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// seq is read after the batch applied, so it covers these upserts:
	// a writer can hand it straight to /changes?since= and observe every
	// subsequent mutation with no read-then-subscribe race.
	resp := map[string]any{"applied": len(batch), "entries": s.reg.Len(), "seq": s.reg.ChangeSeq()}
	s.flagDegraded(resp)
	writeJSON(w, http.StatusOK, resp)
}

// flagDegraded marks a mutation response when persistence has failed:
// the mutation was applied in memory but is no longer being logged, so
// writers must not believe the durability contract still holds just
// because they got a 200.
func (s *server) flagDegraded(resp map[string]any) {
	if s.persist == nil {
		return
	}
	if err := s.persist.Err(); err != nil {
		resp["persistence_degraded"] = err.Error()
	}
}

func (s *server) handleRemove(w http.ResponseWriter, req *http.Request) {
	var body struct {
		ID string `json:"id"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if body.ID == "" {
		writeError(w, http.StatusBadRequest, errors.New("no id in request"))
		return
	}
	resp := map[string]any{"removed": s.reg.Remove(body.ID), "seq": s.reg.ChangeSeq()}
	s.flagDegraded(resp)
	writeJSON(w, http.StatusOK, resp)
}

// handleNearestGet answers proximity queries centered on a registered
// node: /nearest?id=n1&k=8, or radius mode with &radius_ms=50.
func (s *server) handleNearestGet(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing id parameter (POST a coordinate for coordinate-centered queries)"))
		return
	}
	if radiusStr := req.URL.Query().Get("radius_ms"); radiusStr != "" {
		radius, err := strconv.ParseFloat(radiusStr, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad radius_ms: %w", err))
			return
		}
		entry, ok := s.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown id %q", id))
			return
		}
		// Bounded like k-mode: +1 slack for the excluded center, +1 to
		// detect truncation.
		res, err := s.reg.WithinLimit(entry.Coord, radius, maxK+2)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Consistent with k-mode: the center node is not its own peer.
		filtered := res[:0]
		for _, rk := range res {
			if rk.ID != id {
				filtered = append(filtered, rk)
			}
		}
		truncated := len(filtered) > maxK
		if truncated {
			filtered = filtered[:maxK]
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(filtered), "truncated": truncated})
		return
	}
	k, ok := parseK(w, req.URL.Query().Get("k"))
	if !ok {
		return
	}
	res, err := s.reg.NearestTo(id, k)
	if errors.Is(err, netcoord.ErrUnknownID) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res)})
}

// handleNearestPost answers proximity queries centered on an arbitrary
// coordinate — the "nearest replicas to this client" call for clients
// that are not registered themselves.
func (s *server) handleNearestPost(w http.ResponseWriter, req *http.Request) {
	var body struct {
		Coord    netcoord.Coordinate `json:"coord"`
		K        int                 `json:"k"`
		RadiusMS *float64            `json:"radius_ms"`
	}
	if !s.decode(w, req, &body) {
		return
	}
	if body.RadiusMS != nil {
		res, err := s.reg.WithinLimit(body.Coord, *body.RadiusMS, maxK+1)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		truncated := len(res) > maxK
		if truncated {
			res = res[:maxK]
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res), "truncated": truncated})
		return
	}
	k := body.K
	if k == 0 {
		k = defaultK
	}
	if k < 1 || k > maxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be an integer in [1, %d]", maxK))
		return
	}
	res, err := s.reg.Nearest(body.Coord, k)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": toRankedJSON(res)})
}

func (s *server) handleEstimate(w http.ResponseWriter, req *http.Request) {
	a, b := req.URL.Query().Get("a"), req.URL.Query().Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing a or b parameter"))
		return
	}
	d, err := s.reg.Estimate(a, b)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"a": a, "b": b, "rtt_ms": d})
}

func (s *server) handleStats(w http.ResponseWriter, req *http.Request) {
	body := map[string]any{
		"registry":       s.reg.Stats(),
		"uptime_seconds": time.Since(s.started).Seconds(),
	}
	if s.follower != nil {
		// A follower's position in the leader's sequence space; its own
		// stream is disabled.
		fst := s.follower.FollowerStats()
		body["follower"] = fst
		body["seq"] = fst.AppliedSeq
	} else {
		body["change_stream"] = s.reg.ChangeStreamStats()
		body["seq"] = s.reg.ChangeSeq()
	}
	if s.persist != nil {
		body["persistence"] = map[string]any{
			"recovery": s.persist.Recovery(),
			"store":    s.persist.PersistStats(),
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// handleSnapshot serves the replica-bootstrap pair: the full entry set
// and the stream sequence to resume from. The body is streamed entry
// by entry through a small buffer — a bootstrap of a multi-million-
// entry registry must not materialize a second (and third) copy of it
// in one response buffer. On a follower the sequence is its applied
// position and the body carries `follower_of`, so a replica pointed at
// another replica fails fast instead of bootstrapping a registry whose
// stream it can never tail (follower-relayed /changes is a ROADMAP
// follow-on).
func (s *server) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	var (
		entries    []netcoord.RegistryEntry
		seq        uint64
		followerOf string
	)
	if s.follower != nil {
		// Sequence before state, same as the leader path: the entries
		// then form a superset of the stream position, which replays
		// idempotently.
		seq = s.follower.AppliedSeq()
		entries = s.reg.Snapshot()
		followerOf = s.follower.FollowerStats().LeaderURL
	} else {
		entries, seq = s.reg.SnapshotWithSeq()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriterSize(w, 1<<16)
	fmt.Fprintf(bw, `{"seq":%d`, seq)
	if followerOf != "" {
		quoted, _ := json.Marshal(followerOf)
		fmt.Fprintf(bw, `,"follower_of":%s`, quoted)
	}
	_, _ = bw.WriteString(`,"entries":[`)
	for i, e := range entries {
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		data, err := json.Marshal(netcoord.ChangeEntry{
			ID:                e.ID,
			Coord:             e.Coord,
			Error:             e.Error,
			UpdatedAtUnixNano: e.UpdatedAt.UnixNano(),
		})
		if err != nil {
			return // headers are out; the truncated body fails the client's decode
		}
		_, _ = bw.Write(data)
	}
	_, _ = bw.WriteString("]}\n")
	_ = bw.Flush()
}

// Changes endpoint bounds.
const (
	defaultChangesLimit = 512
	maxChangesLimit     = 4096
	maxChangesWait      = time.Minute
)

// handleChanges tails the change stream: everything after ?since=,
// long-polling up to ?wait= when the stream is quiet. History older
// than the ring is replayed from the WAL when the registry is
// persistent; beyond that, 410 tells the client to re-bootstrap from
// /snapshot.
func (s *server) handleChanges(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	since, err := strconv.ParseUint(q.Get("since"), 10, 64)
	if q.Get("since") == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing since parameter (use seq from /snapshot, /stats, or a mutation response; 0 = from the beginning)"))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
		return
	}
	limit := defaultChangesLimit
	if raw := q.Get("limit"); raw != "" {
		limit, err = strconv.Atoi(raw)
		if err != nil || limit < 1 || limit > maxChangesLimit {
			writeError(w, http.StatusBadRequest, fmt.Errorf("limit must be an integer in [1, %d]", maxChangesLimit))
			return
		}
	}
	var wait time.Duration
	if raw := q.Get("wait"); raw != "" {
		wait, err = time.ParseDuration(raw)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait: %v", raw))
			return
		}
		if wait > maxChangesWait {
			wait = maxChangesWait
		}
	}
	deadline := time.Now().Add(wait)
	for {
		evs, err := s.changesSince(since, limit)
		if errors.Is(err, netcoord.ErrChangeHistoryTruncated) {
			writeError(w, http.StatusGone, fmt.Errorf("%v; re-bootstrap from /snapshot", err))
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if len(evs) > 0 || wait <= 0 || !time.Now().Before(deadline) {
			writeJSON(w, http.StatusOK, map[string]any{"seq": s.reg.ChangeSeq(), "events": evs})
			return
		}
		if !s.waitForChange(req, since, deadline) {
			// Client went away, or shutdown/deadline: answer with what
			// there is (nothing) so long-poll loops stay simple.
			writeJSON(w, http.StatusOK, map[string]any{"seq": s.reg.ChangeSeq(), "events": []netcoord.ChangeEvent{}})
			return
		}
	}
}

// changesSince picks the deepest history source available.
func (s *server) changesSince(since uint64, limit int) ([]netcoord.ChangeEvent, error) {
	if s.persist != nil {
		return s.persist.ChangesSince(since, limit)
	}
	return s.reg.ChangesSince(since, limit)
}

// waitForChange blocks until the stream moves past since, the client
// disconnects, shutdown begins, or the deadline passes. It reports
// whether a new event may be available.
func (s *server) waitForChange(req *http.Request, since uint64, deadline time.Time) bool {
	sub, err := s.reg.SubscribeChanges(1)
	if err != nil {
		return false
	}
	defer sub.Close()
	// The subscription only sees events after its attach; re-check the
	// ring so an event published between our empty read and the attach
	// is not slept through.
	if s.reg.ChangeSeq() > since {
		return true
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case _, ok := <-sub.C():
		return ok
	case <-timer.C:
		return false
	case <-req.Context().Done():
		return false
	case <-s.shutdown:
		return false
	}
}

// Watch endpoint tuning: the per-subscriber event buffer (a gap from
// overflow just forces one conservative recompute) and the SSE
// keepalive cadence.
const (
	watchSubBuffer = 1024
	watchHeartbeat = 15 * time.Second
)

// watchDelta is one /watch SSE payload: the full current top-k plus
// the membership delta against the previous payload.
type watchDelta struct {
	Seq     uint64       `json:"seq"`
	Results []rankedJSON `json:"results"`
	Added   []string     `json:"added,omitempty"`
	Removed []string     `json:"removed,omitempty"`
}

// handleWatch streams nearest-set changes for one watched coordinate
// as server-sent events: an initial "snapshot" with the current top-k,
// then a "delta" only when the top-k membership or order actually
// changes. Events that cannot affect the watcher's top-k — the vastly
// common case with stable application-level coordinates — are filtered
// against the current k-th distance without touching the spatial
// index; only plausible events trigger a recompute, and only a changed
// result is pushed.
//
// id-mode (?id=n1) matches /nearest?id=n1 semantics: the node is not
// its own neighbor, and its coordinate is re-resolved on every
// recompute, so the watch follows the node when it moves. The stream
// ends if the watched node is removed.
func (s *server) handleWatch(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	k, ok := parseK(w, q.Get("k"))
	if !ok {
		return
	}
	watchID := q.Get("id")
	var fixed netcoord.Coordinate
	switch {
	case watchID != "":
		if _, found := s.reg.Get(watchID); !found {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown id %q", watchID))
			return
		}
	case q.Get("vec") != "":
		var err error
		fixed, err = parseVec(q.Get("vec"), q.Get("height"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, errors.New("missing id or vec parameter (vec=x,y,z&height=h watches an arbitrary coordinate)"))
		return
	}
	// recompute answers "top-k now" plus the origin it was measured
	// from (id-mode re-resolves the node's current coordinate, so a
	// moving watched node keeps the question honest).
	recompute := func() ([]netcoord.Ranked, netcoord.Coordinate, error) {
		if watchID == "" {
			res, err := s.reg.Nearest(fixed, k)
			return res, fixed, err
		}
		entry, found := s.reg.Get(watchID)
		if !found {
			return nil, netcoord.Coordinate{}, fmt.Errorf("watched id %q removed", watchID)
		}
		res, err := s.reg.NearestTo(watchID, k)
		return res, entry.Coord, err
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by this connection"))
		return
	}
	// Subscribe before the initial query: every mutation after the
	// snapshot below is then either in the snapshot or delivered — no
	// unwatched window.
	sub, err := s.reg.SubscribeChanges(watchSubBuffer)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	defer sub.Close()
	cur, from, err := recompute()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if writeSSE(w, "snapshot", watchDelta{Seq: sub.JoinSeq(), Results: toRankedJSON(cur)}) != nil {
		return
	}
	fl.Flush()

	members, kth, full := watchState(cur, k)
	lastSeq := sub.JoinSeq()
	hb := time.NewTicker(watchHeartbeat)
	defer hb.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-s.shutdown:
			return
		case <-hb.C:
			// Comment frames keep idle connections alive through proxies
			// and let dead clients surface as write errors.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, open := <-sub.C():
			if !open {
				return // registry closed
			}
			// A sequence gap means dropped events: recompute
			// unconditionally rather than trust a stale filter state.
			relevant := ev.Seq != lastSeq+1 || watchRelevant(ev, watchID, members, kth, full, from)
			lastSeq = ev.Seq
			// Coalesce whatever else is already buffered: one recompute
			// covers the whole burst.
			for drained := false; !drained; {
				select {
				case ev2, open2 := <-sub.C():
					if !open2 {
						drained = true
						break
					}
					relevant = relevant || ev2.Seq != lastSeq+1 || watchRelevant(ev2, watchID, members, kth, full, from)
					lastSeq = ev2.Seq
				default:
					drained = true
				}
			}
			if !relevant {
				continue
			}
			next, origin, err := recompute()
			if err != nil {
				return // watched node removed (or registry torn down)
			}
			from = origin
			added, removed, changed := diffRanked(cur, next)
			// The filter state tracks the latest result even when the
			// membership/order is unchanged (a member may have moved
			// without reordering, shifting the k-th distance).
			cur = next
			members, kth, full = watchState(cur, k)
			if !changed {
				continue
			}
			if writeSSE(w, "delta", watchDelta{Seq: lastSeq, Results: toRankedJSON(cur), Added: added, Removed: removed}) != nil {
				return
			}
			fl.Flush()
		}
	}
}

// watchState derives the event filter's view of a top-k result: the
// member set, the distance to beat, and whether the set is full (a
// non-full set admits any upsert).
func watchState(cur []netcoord.Ranked, k int) (members map[string]struct{}, kth float64, full bool) {
	members = make(map[string]struct{}, len(cur))
	for _, r := range cur {
		members[r.ID] = struct{}{}
	}
	full = len(cur) == k
	if full {
		kth = cur[len(cur)-1].EstimatedRTT
	} else {
		kth = math.Inf(1)
	}
	return members, kth, full
}

// watchRelevant reports whether one event could change the watched
// top-k: any touch of the watched node itself (its coordinate is the
// query origin) or of a current member, or an upsert landing at or
// inside the k-th distance (ties admit by id, hence <=). Everything
// else provably cannot alter the result and is filtered without a
// spatial query.
func watchRelevant(ev netcoord.ChangeEvent, watchID string, members map[string]struct{}, kth float64, full bool, from netcoord.Coordinate) bool {
	switch ev.Op {
	case netcoord.ChangeUpsert:
		if ev.Entry == nil {
			return true
		}
		if watchID != "" && ev.Entry.ID == watchID {
			// The origin itself: only an actual move matters — heartbeat
			// refreshes of the watched node stay filtered.
			return !ev.Entry.Coord.Equal(from)
		}
		if _, ok := members[ev.Entry.ID]; ok {
			return true
		}
		if !full {
			return true
		}
		d, err := from.DistanceTo(ev.Entry.Coord)
		if err != nil {
			return false // wrong-dimension entries cannot be in this index
		}
		return d <= kth
	case netcoord.ChangeRemove:
		if watchID != "" && ev.ID == watchID {
			return true
		}
		_, ok := members[ev.ID]
		return ok
	case netcoord.ChangeEvict:
		for _, id := range ev.IDs {
			if id == watchID && watchID != "" {
				return true
			}
			if _, ok := members[id]; ok {
				return true
			}
		}
		return false
	default:
		return true // unknown op: be conservative
	}
}

// diffRanked compares two ranked lists by id sequence. added/removed
// report membership changes; changed is also true for pure reorders.
func diffRanked(old, next []netcoord.Ranked) (added, removed []string, changed bool) {
	if len(old) == len(next) {
		same := true
		for i := range old {
			if old[i].ID != next[i].ID {
				same = false
				break
			}
		}
		if same {
			return nil, nil, false
		}
	}
	oldSet := make(map[string]struct{}, len(old))
	for _, r := range old {
		oldSet[r.ID] = struct{}{}
	}
	nextSet := make(map[string]struct{}, len(next))
	for _, r := range next {
		nextSet[r.ID] = struct{}{}
		if _, ok := oldSet[r.ID]; !ok {
			added = append(added, r.ID)
		}
	}
	for _, r := range old {
		if _, ok := nextSet[r.ID]; !ok {
			removed = append(removed, r.ID)
		}
	}
	return added, removed, true
}

// writeSSE frames one server-sent event.
func writeSSE(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// parseVec parses the vec=x,y,z (+ optional height) watch parameters.
func parseVec(raw, height string) (netcoord.Coordinate, error) {
	parts := strings.Split(raw, ",")
	c := netcoord.Coordinate{Vec: make([]float64, len(parts))}
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return netcoord.Coordinate{}, fmt.Errorf("bad vec component %q: %w", p, err)
		}
		c.Vec[i] = v
	}
	if height != "" {
		h, err := strconv.ParseFloat(height, 64)
		if err != nil {
			return netcoord.Coordinate{}, fmt.Errorf("bad height: %w", err)
		}
		c.Height = h
	}
	return c, nil
}

// defaultK is the k used when a nearest query does not specify one.
const defaultK = 8

// maxK bounds a single query's result size so one request cannot ask
// the service to rank the whole registry.
const maxK = 1024

func parseK(w http.ResponseWriter, raw string) (int, bool) {
	if raw == "" {
		return defaultK, true
	}
	k, err := strconv.Atoi(raw)
	if err != nil || k <= 0 || k > maxK {
		writeError(w, http.StatusBadRequest, fmt.Errorf("k must be an integer in [1, %d]", maxK))
		return 0, false
	}
	return k, true
}

// decode reads a bounded JSON body, rejecting unknown fields.
func (s *server) decode(w http.ResponseWriter, req *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
