package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// postJSON and getJSON drive a running ncserve over HTTP; the
// httptest-level equivalents live with the handlers in internal/server.
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

// ncserveProc is one running ncserve binary under test.
type ncserveProc struct {
	cmd   *exec.Cmd
	base  string // http://host:port
	debug string // http://host:port of -debug-addr, when enabled
}

// startNCServe launches the built binary and waits for its listen line.
func startNCServe(t *testing.T, bin string, args ...string) *ncserveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start ncserve: %v", err)
	}
	lines := bufio.NewScanner(stdout)
	var base, debug string
	for lines.Scan() {
		line := lines.Text()
		// The debug line (when -debug-addr is on) prints before the
		// main listen line, so both are available once the loop breaks.
		if i := strings.Index(line, "debug endpoints (pprof, expvar) on http://"); i >= 0 {
			debug = "http://" + strings.Fields(line[i+len("debug endpoints (pprof, expvar) on http://"):])[0]
		}
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			base = "http://" + strings.Fields(line[i+len("listening on http://"):])[0]
			break
		}
	}
	if base == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("ncserve never reported its listen address (scan err %v)", lines.Err())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for lines.Scan() {
		}
	}()
	p := &ncserveProc{cmd: cmd, base: base, debug: debug}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	return p
}

// terminate sends SIGTERM (the graceful-shutdown path that flushes the
// WAL) and waits for a clean exit.
func (p *ncserveProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ncserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatal("ncserve did not exit within 15s of SIGTERM")
	}
}

// statsEntries fetches /stats and returns registry.entries and
// registry.evictions.
func statsEntries(t *testing.T, base string) (entries, evictions float64) {
	t.Helper()
	_, body := getJSON(t, base+"/stats")
	reg, ok := body["registry"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing registry section: %v", body)
	}
	entries, _ = reg["entries"].(float64)
	evictions, _ = reg["evictions"].(float64)
	return entries, evictions
}

func TestRestartWarmE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the ncserve binary")
	}
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "ncserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(scratch, "data")

	// First life: populate, then die gracefully.
	const n = 25
	p1 := startNCServe(t, bin, "-data-dir", dataDir)
	for i := 0; i < n; i++ {
		status, body := postJSON(t, p1.base+"/upsert",
			fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,0,0]},"error":0.1}`, i, i))
		if status != http.StatusOK {
			t.Fatalf("upsert: %d %v", status, body)
		}
	}
	if status, _ := postJSON(t, p1.base+"/remove", `{"id":"n00"}`); status != http.StatusOK {
		t.Fatalf("remove: %d", status)
	}
	if entries, _ := statsEntries(t, p1.base); entries != n-1 {
		t.Fatalf("pre-restart entries = %v, want %d", entries, n-1)
	}
	p1.terminate(t)

	// Second life: warm restart with every entry intact.
	p2 := startNCServe(t, bin, "-data-dir", dataDir)
	entries, _ := statsEntries(t, p2.base)
	if entries != n-1 {
		t.Fatalf("post-restart entries = %v, want %d (restart came back cold)", entries, n-1)
	}
	_, body := getJSON(t, p2.base+"/stats")
	pers, ok := body["persistence"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing persistence section: %v", body)
	}
	rec, _ := pers["recovery"].(map[string]any)
	if got, _ := rec["entries"].(float64); got != n-1 {
		t.Fatalf("recovery.entries = %v, want %d", got, n-1)
	}
	// Queries serve recovered coordinates immediately.
	status, est := getJSON(t, p2.base+"/estimate?a=n01&b=n11")
	if status != http.StatusOK {
		t.Fatalf("estimate on recovered registry: %d %v", status, est)
	}
	if rtt, _ := est["rtt_ms"].(float64); rtt != 10 {
		t.Fatalf("recovered estimate = %v ms, want 10 (coordinates corrupted?)", rtt)
	}
	// The removed entry stayed removed.
	if status, _ := getJSON(t, p2.base+"/estimate?a=n00&b=n01"); status != http.StatusNotFound {
		t.Fatalf("removed entry resurrected by restart (status %d)", status)
	}
	p2.terminate(t)

	// Third life: a TTL shorter than the downtime evicts the recovered
	// entries on the first janitor sweep, because UpdatedAt survived the
	// restarts — recovered entries do not get a fresh lease.
	time.Sleep(600 * time.Millisecond)
	p3 := startNCServe(t, bin, "-data-dir", dataDir, "-ttl", "500ms")
	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, evictions := statsEntries(t, p3.base)
		if entries == 0 && evictions == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale recovered entries not TTL-evicted: entries=%v evictions=%v", entries, evictions)
		}
		time.Sleep(50 * time.Millisecond)
	}
	p3.terminate(t)
}

// kill hard-stops the process (the crash path: no graceful flush, no
// goodbye to the leader).
func (p *ncserveProc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = p.cmd.Process.Wait()
}

// fetchSnapshot grabs a /snapshot body: the stream seq and the entries
// keyed by id (coord vector flattened to its JSON form for comparison).
func fetchSnapshot(t *testing.T, base string) (float64, map[string]any) {
	t.Helper()
	status, body := getJSON(t, base+"/snapshot")
	if status != http.StatusOK {
		t.Fatalf("/snapshot: %d %v", status, body)
	}
	seq, _ := body["seq"].(float64)
	entries := make(map[string]any)
	for _, raw := range body["entries"].([]any) {
		e := raw.(map[string]any)
		entries[e["id"].(string)] = e
	}
	return seq, entries
}

// waitFollowerConverged polls the follower's /stats until applied_seq
// reaches wantSeq with zero lag.
func waitFollowerConverged(t *testing.T, base string, wantSeq float64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		_, body := getJSON(t, base+"/stats")
		if f, ok := body["follower"].(map[string]any); ok {
			if applied, _ := f["applied_seq"].(float64); applied >= wantSeq {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged to seq %v: %v", wantSeq, body["follower"])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestFollowerCatchupE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the ncserve binary")
	}
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "ncserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Leader with a WAL, so /changes history survives its ring.
	leader := startNCServe(t, bin, "-data-dir", filepath.Join(scratch, "leader-data"))
	const n = 40
	for i := 0; i < n; i++ {
		status, body := postJSON(t, leader.base+"/upsert",
			fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,%d,0]},"error":0.2}`, i, i, (i*7)%23))
		if status != http.StatusOK {
			t.Fatalf("upsert: %d %v", status, body)
		}
	}

	// Follower bootstraps from the live, still-mutating leader.
	follower := startNCServe(t, bin, "-follow", leader.base)
	leaderSeq, leaderEntries := fetchSnapshot(t, leader.base)
	waitFollowerConverged(t, follower.base, leaderSeq)
	_, followerEntries := fetchSnapshot(t, follower.base)
	if len(followerEntries) != len(leaderEntries) {
		t.Fatalf("follower has %d entries, leader %d", len(followerEntries), len(leaderEntries))
	}

	// Kill the follower (hard), mutate the leader meanwhile, restart
	// the follower, and require bit-identical convergence.
	follower.kill(t)
	for i := 0; i < 15; i++ {
		postJSON(t, leader.base+"/upsert",
			fmt.Sprintf(`{"id":"m%02d","coord":{"vec":[%d,0,%d]}}`, i, i*2, i))
	}
	postJSON(t, leader.base+"/remove", `{"id":"n00"}`)
	postJSON(t, leader.base+"/remove", `{"id":"n13"}`)

	follower2 := startNCServe(t, bin, "-follow", leader.base, "-debug-addr", "127.0.0.1:0")
	leaderSeq, leaderEntries = fetchSnapshot(t, leader.base)
	waitFollowerConverged(t, follower2.base, leaderSeq)
	_, followerEntries = fetchSnapshot(t, follower2.base)
	if len(followerEntries) != len(leaderEntries) {
		t.Fatalf("post-restart follower has %d entries, leader %d", len(followerEntries), len(leaderEntries))
	}
	for id, le := range leaderEntries {
		fe, ok := followerEntries[id]
		if !ok {
			t.Fatalf("entry %q missing on follower", id)
		}
		lj, _ := json.Marshal(le)
		fj, _ := json.Marshal(fe)
		if string(lj) != string(fj) {
			t.Fatalf("entry %q diverged:\nleader   %s\nfollower %s", id, lj, fj)
		}
	}

	// The follower's read path answers like the leader's.
	status, lNear := getJSON(t, leader.base+"/nearest?id=n05&k=5")
	if status != http.StatusOK {
		t.Fatalf("leader nearest: %d", status)
	}
	status, fNear := getJSON(t, follower2.base+"/nearest?id=n05&k=5")
	if status != http.StatusOK {
		t.Fatalf("follower nearest: %d", status)
	}
	lj, _ := json.Marshal(lNear["results"])
	fj, _ := json.Marshal(fNear["results"])
	if string(lj) != string(fj) {
		t.Fatalf("nearest diverged:\nleader   %s\nfollower %s", lj, fj)
	}

	// Mutations on the follower are refused.
	if status, _ := postJSON(t, follower2.base+"/upsert", `{"id":"x","coord":{"vec":[1,1,1]}}`); status != http.StatusForbidden {
		t.Fatalf("follower accepted a mutation: %d", status)
	}

	// Observability surface across real processes. A few more streamed
	// mutations first: follower2 bootstrapped from a snapshot, and only
	// streamed (stamped) events feed the propagation-lag histogram.
	for i := 0; i < 5; i++ {
		postJSON(t, leader.base+"/upsert", fmt.Sprintf(`{"id":"p%02d","coord":{"vec":[%d,1,0]}}`, i, i))
	}
	leaderSeq, _ = fetchSnapshot(t, leader.base)
	waitFollowerConverged(t, follower2.base, leaderSeq)

	for _, base := range []string{leader.base, follower2.base} {
		if status, body := getText(t, base+"/healthz"); status != http.StatusOK {
			t.Fatalf("%s/healthz = %d (%s), want 200", base, status, body)
		}
	}
	status, metrics := getText(t, leader.base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("leader /metrics: %d", status)
	}
	for _, want := range []string{"netcoord_http_requests_total", "netcoord_persist_wal_records_total", "netcoord_changefeed_published_total"} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("leader /metrics missing %s:\n%s", want, metrics)
		}
	}
	status, metrics = getText(t, follower2.base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("follower /metrics: %d", status)
	}
	if v := metricValue(t, metrics, "netcoord_follower_apply_lag_seconds_count"); v <= 0 {
		t.Fatalf("follower apply-lag count = %v, want > 0 after streamed mutations", v)
	}
	if v := metricValue(t, metrics, "netcoord_follower_apply_lag_seconds_sum"); v <= 0 {
		t.Fatalf("follower apply-lag sum = %v, want > 0 (publish stamps lost on the wire?)", v)
	}

	// The -debug-addr listener serves pprof and expvar off the public
	// mux; the public listener must NOT serve them.
	if follower2.debug == "" {
		t.Fatal("follower never reported its -debug-addr listener")
	}
	if status, _ := getText(t, follower2.debug+"/debug/pprof/cmdline"); status != http.StatusOK {
		t.Fatalf("debug pprof: %d", status)
	}
	if status, body := getText(t, follower2.debug+"/debug/vars"); status != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("debug expvar: %d (%s)", status, body)
	}
	if status, _ := getText(t, follower2.base+"/debug/pprof/cmdline"); status == http.StatusOK {
		t.Fatal("public listener serves pprof — the debug surface leaked onto the service mux")
	}

	follower2.terminate(t)
	leader.terminate(t)
}

// getText fetches a URL and returns the status plus raw body.
func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts one unlabeled sample's value from a Prometheus
// text exposition.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("bad value for %s: %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, exposition)
	return 0
}
