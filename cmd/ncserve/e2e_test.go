package main

import (
	"bufio"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// ncserveProc is one running ncserve binary under test.
type ncserveProc struct {
	cmd  *exec.Cmd
	base string // http://host:port
}

// startNCServe launches the built binary and waits for its listen line.
func startNCServe(t *testing.T, bin string, args ...string) *ncserveProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start ncserve: %v", err)
	}
	lines := bufio.NewScanner(stdout)
	var base string
	for lines.Scan() {
		line := lines.Text()
		if i := strings.Index(line, "listening on http://"); i >= 0 {
			base = "http://" + strings.Fields(line[i+len("listening on http://"):])[0]
			break
		}
	}
	if base == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("ncserve never reported its listen address (scan err %v)", lines.Err())
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for lines.Scan() {
		}
	}()
	p := &ncserveProc{cmd: cmd, base: base}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	return p
}

// terminate sends SIGTERM (the graceful-shutdown path that flushes the
// WAL) and waits for a clean exit.
func (p *ncserveProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ncserve exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatal("ncserve did not exit within 15s of SIGTERM")
	}
}

// statsEntries fetches /stats and returns registry.entries and
// registry.evictions.
func statsEntries(t *testing.T, base string) (entries, evictions float64) {
	t.Helper()
	_, body := getJSON(t, base+"/stats")
	reg, ok := body["registry"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing registry section: %v", body)
	}
	entries, _ = reg["entries"].(float64)
	evictions, _ = reg["evictions"].(float64)
	return entries, evictions
}

func TestRestartWarmE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the ncserve binary")
	}
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "ncserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(scratch, "data")

	// First life: populate, then die gracefully.
	const n = 25
	p1 := startNCServe(t, bin, "-data-dir", dataDir)
	for i := 0; i < n; i++ {
		status, body := postJSON(t, p1.base+"/upsert",
			fmt.Sprintf(`{"id":"n%02d","coord":{"vec":[%d,0,0]},"error":0.1}`, i, i))
		if status != http.StatusOK {
			t.Fatalf("upsert: %d %v", status, body)
		}
	}
	if status, _ := postJSON(t, p1.base+"/remove", `{"id":"n00"}`); status != http.StatusOK {
		t.Fatalf("remove: %d", status)
	}
	if entries, _ := statsEntries(t, p1.base); entries != n-1 {
		t.Fatalf("pre-restart entries = %v, want %d", entries, n-1)
	}
	p1.terminate(t)

	// Second life: warm restart with every entry intact.
	p2 := startNCServe(t, bin, "-data-dir", dataDir)
	entries, _ := statsEntries(t, p2.base)
	if entries != n-1 {
		t.Fatalf("post-restart entries = %v, want %d (restart came back cold)", entries, n-1)
	}
	_, body := getJSON(t, p2.base+"/stats")
	pers, ok := body["persistence"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing persistence section: %v", body)
	}
	rec, _ := pers["recovery"].(map[string]any)
	if got, _ := rec["entries"].(float64); got != n-1 {
		t.Fatalf("recovery.entries = %v, want %d", got, n-1)
	}
	// Queries serve recovered coordinates immediately.
	status, est := getJSON(t, p2.base+"/estimate?a=n01&b=n11")
	if status != http.StatusOK {
		t.Fatalf("estimate on recovered registry: %d %v", status, est)
	}
	if rtt, _ := est["rtt_ms"].(float64); rtt != 10 {
		t.Fatalf("recovered estimate = %v ms, want 10 (coordinates corrupted?)", rtt)
	}
	// The removed entry stayed removed.
	if status, _ := getJSON(t, p2.base+"/estimate?a=n00&b=n01"); status != http.StatusNotFound {
		t.Fatalf("removed entry resurrected by restart (status %d)", status)
	}
	p2.terminate(t)

	// Third life: a TTL shorter than the downtime evicts the recovered
	// entries on the first janitor sweep, because UpdatedAt survived the
	// restarts — recovered entries do not get a fresh lease.
	time.Sleep(600 * time.Millisecond)
	p3 := startNCServe(t, bin, "-data-dir", dataDir, "-ttl", "500ms")
	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, evictions := statsEntries(t, p3.base)
		if entries == 0 && evictions == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stale recovered entries not TTL-evicted: entries=%v evictions=%v", entries, evictions)
		}
		time.Sleep(50 * time.Millisecond)
	}
	p3.terminate(t)
}
