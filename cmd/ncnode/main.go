// Command ncnode runs a live network-coordinate node: the deployable
// stack the paper ran on PlanetLab. It binds a UDP socket, joins via
// seed addresses, samples neighbors on an interval, and periodically
// prints its system- and application-level coordinates.
//
// Start a first node:
//
//	ncnode -listen 127.0.0.1:9000
//
// Join more:
//
//	ncnode -listen 127.0.0.1:9001 -join 127.0.0.1:9000
//	ncnode -listen 127.0.0.1:9002 -join 127.0.0.1:9000 -interval 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netcoord"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncnode: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncnode", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", "127.0.0.1:0", "UDP listen address")
		join     = fs.String("join", "", "comma-separated seed addresses")
		interval = fs.Duration("interval", 5*time.Second, "sampling interval (paper: 5s)")
		report   = fs.Duration("report", 10*time.Second, "status print interval")
		duration = fs.Duration("duration", 0, "exit after this long (0 = run until signal)")
		noFilter = fs.Bool("no-filter", false, "disable the MP filter (raw Vivaldi baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var seeds []string
	if *join != "" {
		for _, s := range strings.Split(*join, ",") {
			if s = strings.TrimSpace(s); s != "" {
				seeds = append(seeds, s)
			}
		}
	}
	clientCfg := netcoord.DefaultConfig()
	clientCfg.DisableFilter = *noFilter

	updates := make(chan netcoord.NodeUpdate, 16)
	n, err := netcoord.StartNode(netcoord.NodeConfig{
		ListenAddr:     *listen,
		Seeds:          seeds,
		Client:         clientCfg,
		SampleInterval: *interval,
		Updates:        updates,
	})
	if err != nil {
		return err
	}
	defer func() {
		if serr := n.Stop(); serr != nil && err == nil {
			err = serr
		}
	}()
	fmt.Printf("ncnode listening on %s (filter: %v, policy: energy w=32 tau=8)\n", n.Addr(), !*noFilter)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	reportTicker := time.NewTicker(*report)
	defer reportTicker.Stop()
	var deadline <-chan time.Time
	if *duration > 0 {
		t := time.NewTimer(*duration)
		defer t.Stop()
		deadline = t.C
	}

	for {
		select {
		case <-sigCh:
			fmt.Println("\nshutting down")
			return nil
		case <-deadline:
			return nil
		case u := <-updates:
			fmt.Printf("%s application coordinate updated: %v\n", u.At.Format(time.TimeOnly), u.Coord)
		case <-reportTicker.C:
			fmt.Printf("%s sys=%v app=%v confidence=%.2f neighbors=%d samples=%d\n",
				time.Now().Format(time.TimeOnly),
				n.Coordinate(), n.AppCoordinate(), n.Confidence(), len(n.Neighbors()), n.Samples())
		}
	}
}
