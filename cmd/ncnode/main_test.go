package main

import (
	"testing"
	"time"
)

func TestRunRejectsBadListenAddr(t *testing.T) {
	if err := run([]string{"-listen", "999.999.0.1:not-a-port"}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}

func TestRunWithDeadline(t *testing.T) {
	// A single node with no peers: starts, reports, exits on deadline.
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0",
			"-interval", "50ms",
			"-report", "100ms",
			"-duration", "400ms",
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("node did not exit on -duration")
	}
}

func TestTwoNodesOverCLI(t *testing.T) {
	// Start a seed node in the background, then a second node that
	// joins it; both exit on their deadlines without error.
	seedDone := make(chan error, 1)
	go func() {
		seedDone <- run([]string{
			"-listen", "127.0.0.1:29471",
			"-interval", "50ms",
			"-report", "1s",
			"-duration", "2s",
		})
	}()
	time.Sleep(200 * time.Millisecond)
	joinDone := make(chan error, 1)
	go func() {
		joinDone <- run([]string{
			"-listen", "127.0.0.1:0",
			"-join", "127.0.0.1:29471",
			"-interval", "50ms",
			"-report", "1s",
			"-duration", "1500ms",
		})
	}()
	for i, ch := range []chan error{seedDone, joinDone} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("node %d did not exit", i)
		}
	}
}
