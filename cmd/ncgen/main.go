// Command ncgen generates synthetic wide-area latency traces — the
// stand-in for the paper's PlanetLab ping trace — and prints their
// characterization (the Figure 2 histogram).
//
// Usage:
//
//	ncgen -nodes 269 -seconds 14400 -out trace.nctr
//	ncgen -nodes 64 -seconds 2400 -stats
package main

import (
	"flag"
	"fmt"
	"os"

	"netcoord/internal/netsim"
	"netcoord/internal/stats"
	"netcoord/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "ncgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ncgen", flag.ContinueOnError)
	var (
		nodes    = fs.Int("nodes", 64, "number of hosts")
		seconds  = fs.Uint64("seconds", 2400, "trace duration in seconds")
		interval = fs.Uint64("interval", 1, "per-node sampling period in seconds")
		seed     = fs.Uint64("seed", 20050502, "random seed")
		out      = fs.String("out", "", "output trace file (binary format); empty for none")
		show     = fs.Bool("stats", true, "print the Figure 2 histogram of the generated trace")
		static   = fs.Bool("static", false, "static latency matrix mode (no observation noise)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := netsim.DefaultWideArea(*nodes, *seed)
	cfg.Static = *static
	net, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
		IntervalTicks: *interval,
		DurationTicks: *seconds,
		Seed:          *seed + 1,
	})
	if err != nil {
		return err
	}

	var w *trace.Writer
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return fmt.Errorf("create %s: %w", *out, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = trace.NewWriter(f)
	}

	hist, err := stats.NewHistogram(stats.Fig2Bounds())
	if err != nil {
		return err
	}
	var total, lost uint64
	for {
		s, ok := gen.Next()
		if !ok {
			break
		}
		total++
		if s.Lost {
			lost++
		} else {
			hist.Observe(s.RTT)
		}
		if w != nil {
			if err := w.Write(s); err != nil {
				return err
			}
		}
	}
	if w != nil {
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d samples to %s\n", w.Count(), *out)
	}
	if *show {
		fmt.Printf("trace: %d nodes, %d s, %d samples (%d lost)\n", *nodes, *seconds, total, lost)
		fmt.Print(hist.Render())
		fmt.Printf("fraction >= 1s: %.4f%% (paper: ~0.4%%)\n", hist.FractionAtOrAbove(1000)*100)
	}
	return nil
}
