package main

import (
	"os"
	"path/filepath"
	"testing"

	"netcoord/internal/trace"
)

func TestRunGeneratesReadableTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "test.nctr")
	if err := run([]string{"-nodes", "8", "-seconds", "60", "-out", out, "-stats=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer func() {
		_ = f.Close() // read-only
	}()
	r := trace.NewReader(f)
	samples := trace.Collect(r, 0)
	if err := r.Err(); err != nil {
		t.Fatalf("reader: %v", err)
	}
	if len(samples) != 8*60 {
		t.Fatalf("trace has %d samples, want 480", len(samples))
	}
	for _, s := range samples {
		if s.From < 0 || s.From >= 8 || s.To < 0 || s.To >= 8 {
			t.Fatalf("sample out of range: %+v", s)
		}
	}
}

func TestRunStaticMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "static.nctr")
	if err := run([]string{"-nodes", "6", "-seconds", "30", "-out", out, "-static", "-stats=false"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer func() {
		_ = f.Close() // read-only
	}()
	samples := trace.Collect(trace.NewReader(f), 0)
	// Static mode: every link's samples are identical across ticks.
	type link struct{ from, to int }
	seen := map[link]float64{}
	for _, s := range samples {
		if s.Lost {
			t.Fatal("static trace lost a sample")
		}
		k := link{s.From, s.To}
		if prev, ok := seen[k]; ok && prev != s.RTT {
			t.Fatalf("link %v varied in static mode: %v vs %v", k, prev, s.RTT)
		}
		seen[k] = s.RTT
	}
}

func TestRunStatsOnly(t *testing.T) {
	if err := run([]string{"-nodes", "6", "-seconds", "30"}); err != nil {
		t.Fatalf("run without -out: %v", err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-nodes", "1", "-seconds", "30"}); err == nil {
		t.Fatal("one-node network accepted")
	}
	if err := run([]string{"-nodes", "8", "-seconds", "0"}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := run([]string{"-out", "/no/such/dir/x.nctr", "-nodes", "8", "-seconds", "30"}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
