package netcoord

// query.go is the Registry's read engine: every proximity query —
// Nearest, NearestTo, WithinLimit, Within, and their batched variants —
// funnels into the machinery here.
//
// Two execution paths share one correctness contract. The sequential
// walk carries a single bounded heap across the shards, tightening its
// pruning bound as it goes. The parallel fan-out hands every shard to a
// reusable worker pool, each shard filling its own heap while all of
// them prune against one shared atomic Bound (the best kth distance any
// shard has proven so far), and the per-shard heaps merge through one
// final bounded heap. Both paths accept candidates at distance <= the
// bound and break distance ties by id, so they produce bit-identical
// results — to each other and to a single tree over the whole point set
// (the property the internal/index tests pin down).
//
// Allocation discipline: the scratch a query needs — candidate heaps,
// per-shard result slots, merge buffers — lives in a pooled queryCtx,
// so the steady-state NearestInto path performs zero allocations per
// query (CI-gated via benchjson -require-zero-alloc, statically checked
// by nclint's hotpath analyzer through the //nc:hotpath annotations).

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"netcoord/internal/bheap"
	"netcoord/internal/index"
)

const (
	// queryParallelMinShards and queryParallelMinPerShard set the
	// fan-out crossover: with fewer shards, or fewer live entries per
	// shard, the per-task handoff costs more than the tree walk it
	// parallelizes, so the sequential path wins. Picked by
	// BenchmarkRegistryNearestParallel vs BenchmarkRegistryNearestSeq.
	queryParallelMinShards   = 4
	queryParallelMinPerShard = 256

	// maxBatchArena caps (in neighbors) the scratch arena one batched
	// query chunk may claim, so giant batches stream through bounded
	// memory instead of materializing shards x queries x k at once.
	maxBatchArena = 1 << 18
)

// queryOp selects what a fanned-out shard task computes.
type queryOp uint8

const (
	opNearest queryOp = iota
	opWithin
	opBatchNearest
	opBatchWithin
)

// queryTask is one unit of fan-out work: run query context qc against
// shard shard. Tasks are value-sized so channel handoff never allocates.
type queryTask struct {
	qc    *queryCtx
	shard int
}

// run executes the task and signals the dispatcher when it was the last
// one standing. The atomic decrement plus the buffered done send is the
// completion barrier: the dispatcher's receive happens-after every
// task's writes.
//
//nc:hotpath
func (t queryTask) run() {
	qc := t.qc
	switch qc.op {
	case opNearest:
		qc.runNearestShard(t.shard)
	case opWithin:
		qc.runWithinShard(t.shard)
	case opBatchNearest:
		qc.runBatchShard(t.shard)
	case opBatchWithin:
		qc.runWithinBatchShard(t.shard)
	}
	if qc.remaining.Add(-1) == 0 {
		qc.done <- struct{}{}
	}
}

// queryCtx is the pooled per-query scratch arena: everything a query
// needs beyond its output lives here and is reused, which is what makes
// the steady-state kNN path allocation-free. A ctx is owned by exactly
// one query at a time (taken from and returned to the registry's pool),
// but while a fan-out is in flight its fields are read by worker
// goroutines; the dispatch barrier orders those accesses.
type queryCtx struct {
	r  *Registry
	op queryOp

	// Single-query inputs, read by shard tasks.
	from     Coordinate
	perShard int
	radius   float64
	bound    index.Bound

	// Batch inputs. offs holds per-chunk prefix sums of the per-query
	// heap capacities (len = queries+1); block is the arena stride per
	// shard; arena is laid out shard-major: shard si's slot for query q
	// is arena[si*block+offs[q] : si*block+offs[q+1]], counts[si*Q+q]
	// results long.
	batch    []NearestQuery
	wqueries []WithinQuery
	bounds   []index.Bound
	offs     []int
	block    int
	arena    []index.Neighbor
	counts   []int

	// Scratch: one candidate heap per shard for the fan-out, one merge
	// heap, per-shard radius buffers, and a merged radius buffer. All
	// keep their backing arrays across queries.
	heaps  []*bheap.Heap[index.Neighbor]
	merge  *bheap.Heap[index.Neighbor]
	wbufs  [][]index.Neighbor
	wmerge []index.Neighbor

	remaining atomic.Int32
	done      chan struct{}
}

// newQueryCtx builds the scratch for one in-flight query; the pool
// calls it only when empty, so its allocations amortize to zero.
func newQueryCtx(r *Registry) *queryCtx {
	qc := &queryCtx{
		r:     r,
		heaps: make([]*bheap.Heap[index.Neighbor], len(r.shards)),
		wbufs: make([][]index.Neighbor, len(r.shards)),
		merge: bheap.New(0, index.NeighborBefore),
		done:  make(chan struct{}, 1),
	}
	for i := range qc.heaps {
		qc.heaps[i] = bheap.New(0, index.NeighborBefore)
	}
	return qc
}

// getQueryCtx takes a scratch context from the pool.
//
//nc:hotpath
func (r *Registry) getQueryCtx() *queryCtx {
	return r.qctxPool.Get().(*queryCtx)
}

// putQueryCtx returns a context to the pool, dropping references to
// caller-owned inputs so the pool does not pin them.
//
//nc:hotpath
func (r *Registry) putQueryCtx(qc *queryCtx) {
	qc.from = Coordinate{}
	qc.batch = nil
	qc.wqueries = nil
	r.qctxPool.Put(qc)
}

// resolveQueryWorkers turns the configured parallelism into a worker
// count: 0 means GOMAXPROCS; the count is capped at the shard count,
// since extra workers would only idle.
func resolveQueryWorkers(configured, shards int) int {
	n := configured
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > shards {
		n = shards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// queryPoolReady reports whether the fan-out worker pool is usable,
// starting it on first use. The lazy start keeps registries that never
// see a large query (tests, small deployments) from carrying idle
// goroutines. After Close no new pool can start and queries fall back
// to the sequential walk — the registry stays queryable, as Close
// documents.
//
//nc:hotpath
func (r *Registry) queryPoolReady() bool {
	if r.queryWorkers < 2 {
		return false
	}
	if r.qstarted.Load() {
		return true
	}
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	if r.qstarted.Load() {
		return true
	}
	select {
	case <-r.closed:
		return false
	default:
	}
	r.wg.Add(r.queryWorkers)
	for i := 0; i < r.queryWorkers; i++ {
		//nc:allow(hotpath) worker-pool start: once per registry lifetime
		go r.queryWorker()
	}
	r.qstarted.Store(true)
	return true
}

// queryWorker drains fan-out tasks until the registry closes.
func (r *Registry) queryWorker() {
	defer r.wg.Done()
	for {
		select {
		case <-r.closed:
			return
		case t := <-r.qtasks:
			t.run()
		}
	}
}

// useParallel is the fan-out crossover: enough shards, enough live
// entries that each shard walk amortizes its handoff, and a running
// pool. The live count is advisory (maintained without locks), which
// is fine — both paths return identical results.
//
//nc:hotpath
func (r *Registry) useParallel() bool {
	return len(r.shards) >= queryParallelMinShards &&
		r.live.Load() >= int64(len(r.shards)*queryParallelMinPerShard) &&
		r.queryPoolReady()
}

// dispatch fans qc out as one task per shard and waits for all of them.
// Sends never block: a full channel runs the task inline. While
// waiting, the dispatcher helps drain the shared task channel — it may
// execute tasks belonging to other in-flight queries, which is safe
// (tasks never block) and makes dispatch deadlock-free even when the
// pool is saturated or the workers have exited after Close.
//
//nc:hotpath
func (r *Registry) dispatch(qc *queryCtx, n int) {
	qc.remaining.Store(int32(n))
	for i := 0; i < n; i++ {
		t := queryTask{qc: qc, shard: i}
		select {
		case r.qtasks <- t:
		default:
			t.run()
		}
	}
	for {
		select {
		case t := <-r.qtasks:
			t.run()
		case <-qc.done:
			return
		}
	}
}

// searchShardKNN runs one shard's tree search into h under the shared
// pruning bound. Inputs are pre-validated by the query entry points, so
// the tree's only error return is unreachable and the result is
// discarded visibly.
//
//nc:hotpath
//nc:locked(s.mu)
func searchShardKNN(s *registryShard, from Coordinate, k int, h *bheap.Heap[index.Neighbor], b *index.Bound) {
	_ = s.tree.KNearestInto(from, k, h, b)
}

// searchShardWithin appends one shard's radius matches to buf,
// returning the extended slice. Inputs are pre-validated, as above.
//
//nc:hotpath
//nc:locked(s.mu)
func searchShardWithin(s *registryShard, from Coordinate, radius float64, buf []index.Neighbor) []index.Neighbor {
	buf, _ = s.tree.WithinInto(from, radius, buf)
	return buf
}

// runNearestShard fills this shard's candidate heap for a single-point
// kNN fan-out, pruning against (and tightening) the shared bound.
//
//nc:hotpath
func (qc *queryCtx) runNearestShard(si int) {
	s := qc.r.shards[si]
	h := qc.heaps[si]
	h.Reset(qc.perShard)
	s.mu.RLock()
	searchShardKNN(s, qc.from, qc.perShard, h, &qc.bound)
	s.mu.RUnlock()
}

// runWithinShard fills this shard's radius buffer for a single-point
// Within fan-out.
//
//nc:hotpath
func (qc *queryCtx) runWithinShard(si int) {
	s := qc.r.shards[si]
	buf := qc.wbufs[si][:0]
	s.mu.RLock()
	buf = searchShardWithin(s, qc.from, qc.radius, buf)
	s.mu.RUnlock()
	qc.wbufs[si] = buf
}

// runBatchShard answers every query of the current chunk against this
// shard — shard-major execution, so the shard's tree (and its lock)
// stays hot across the whole batch — copying each query's candidates
// into its arena slot. Each query's shared Bound keeps pruning exact
// across the shards working on it concurrently.
//
//nc:hotpath
func (qc *queryCtx) runBatchShard(si int) {
	s := qc.r.shards[si]
	h := qc.heaps[si]
	nq := len(qc.batch)
	base := si * qc.block
	s.mu.RLock()
	for q := 0; q < nq; q++ {
		bq := &qc.batch[q]
		ps := qc.offs[q+1] - qc.offs[q]
		h.Reset(ps)
		searchShardKNN(s, bq.From, ps, h, &qc.bounds[q])
		qc.counts[si*nq+q] = copy(qc.arena[base+qc.offs[q]:base+qc.offs[q+1]], h.Items())
	}
	s.mu.RUnlock()
}

// runWithinBatchShard answers every radius query against this shard,
// appending matches to the shard's buffer back-to-back in query order
// and recording per-query counts for the gather.
//
//nc:hotpath
func (qc *queryCtx) runWithinBatchShard(si int) {
	s := qc.r.shards[si]
	buf := qc.wbufs[si][:0]
	nq := len(qc.wqueries)
	s.mu.RLock()
	for q := 0; q < nq; q++ {
		wq := &qc.wqueries[q]
		before := len(buf)
		buf = searchShardWithin(s, wq.From, wq.RadiusMillis, buf)
		qc.counts[si*nq+q] = len(buf) - before
	}
	s.mu.RUnlock()
	qc.wbufs[si] = buf
}

// Nearest returns the k registered nodes with the smallest estimated RTT
// from the given coordinate, ascending (ties broken by id). Fewer than k
// are returned if the registry holds fewer. Each shard answers from its
// spatial index and the per-shard bests are merged, so the result is
// exact while the work stays O(shards · log n · k) instead of a full
// scan; large registries fan the shards out across the query worker
// pool. Callers on a zero-allocation budget use NearestInto.
func (r *Registry) Nearest(from Coordinate, k int) ([]Ranked, error) {
	var dst []Ranked
	if k > 0 {
		dst = make([]Ranked, 0, k)
	}
	return r.NearestInto(from, k, dst)
}

// NearestInto is Nearest filling caller-owned storage: results are
// appended to dst[:0] and the filled slice is returned, so a caller
// that reuses dst across queries pays zero steady-state allocations.
//
//nc:hotpath
func (r *Registry) NearestInto(from Coordinate, k int, dst []Ranked) ([]Ranked, error) {
	r.queries.Add(1)
	return r.nearestInto(from, k, "", inf(), dst)
}

// NearestTo is Nearest centered on a registered node, excluding the node
// itself — "which replicas are closest to this client".
func (r *Registry) NearestTo(id string, k int) ([]Ranked, error) {
	e, ok := r.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownID, id)
	}
	r.queries.Add(1)
	var dst []Ranked
	if k > 0 {
		dst = make([]Ranked, 0, k)
	}
	return r.nearestInto(e.Coord, k, id, inf(), dst)
}

// WithinLimit returns the up-to-limit nearest nodes with estimated RTT
// <= radiusMillis, ascending — Within with a result bound, for callers
// (like ncserve) that must not let one query rank an unbounded slice of
// the registry. The radius doubles as the search's pruning bound, so
// the work is proportional to the results returned, not the matches
// that exist.
func (r *Registry) WithinLimit(from Coordinate, radiusMillis float64, limit int) ([]Ranked, error) {
	if radiusMillis < 0 || math.IsNaN(radiusMillis) {
		return nil, fmt.Errorf("netcoord: registry within: radius %v, want >= 0", radiusMillis)
	}
	r.queries.Add(1)
	var dst []Ranked
	if limit > 0 {
		dst = make([]Ranked, 0, limit)
	}
	return r.nearestInto(from, limit, "", radiusMillis, dst)
}

// nearestInto is the kNN core shared by every entry point: validate,
// pick a path, merge through one bounded heap, fill dst. It does not
// bump the query counter — exported wrappers do.
//
//nc:hotpath
func (r *Registry) nearestInto(from Coordinate, k int, exclude string, bound float64, dst []Ranked) ([]Ranked, error) {
	if k <= 0 {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return nil, fmt.Errorf("netcoord: k = %d, want > 0", k)
	}
	if err := from.Validate(r.dim); err != nil {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return nil, fmt.Errorf("netcoord: registry nearest: %w", err)
	}
	if math.IsNaN(bound) {
		//nc:allow(hotpath) validation-failure return: cold by definition
		return nil, fmt.Errorf("netcoord: registry nearest: bound is NaN")
	}
	// Ask each shard for one extra result so dropping the excluded node
	// still leaves k.
	perShard := k
	if exclude != "" {
		perShard++
	}
	qc := r.getQueryCtx()
	qc.bound.Reset(bound)
	h := qc.merge
	h.Reset(perShard)
	if r.useParallel() {
		qc.op = opNearest
		qc.from = from
		qc.perShard = perShard
		r.dispatch(qc, len(r.shards))
		for si := range r.shards {
			for _, n := range qc.heaps[si].Items() {
				h.Offer(n)
			}
		}
	} else {
		// Sequential walk: one heap carried across the stripes, the
		// bound tightening as it fills — O(k) merge state instead of
		// re-sorting an O(S·k) slice per stripe.
		for _, s := range r.shards {
			s.mu.RLock()
			searchShardKNN(s, from, perShard, h, &qc.bound)
			s.mu.RUnlock()
		}
	}
	ns := h.Items()
	index.SortNeighbors(ns)
	dst = dst[:0]
	for _, n := range ns {
		if n.ID == exclude {
			continue
		}
		dst = append(dst, Ranked{
			Candidate:    Candidate{ID: n.ID, Coord: n.Coord},
			EstimatedRTT: n.Distance,
		})
		if len(dst) == k {
			break
		}
	}
	r.putQueryCtx(qc)
	return dst, nil
}

// Within returns every registered node with estimated RTT <= radiusMillis
// from the given coordinate, ascending (ties broken by id) — the
// "replicas inside my latency budget" query. Cost is proportional to the
// number of matches; services exposed to untrusted radii should use
// WithinLimit instead.
func (r *Registry) Within(from Coordinate, radiusMillis float64) ([]Ranked, error) {
	r.queries.Add(1)
	return r.withinRanked(from, radiusMillis)
}

// withinRanked is the radius core: per-shard results stream into one
// reused buffer (parallel: per-shard buffers copied once into a
// size-hinted merge), sorted once at the end.
func (r *Registry) withinRanked(from Coordinate, radius float64) ([]Ranked, error) {
	if err := from.Validate(r.dim); err != nil {
		return nil, fmt.Errorf("netcoord: registry within: %w", err)
	}
	if radius < 0 || math.IsNaN(radius) {
		return nil, fmt.Errorf("netcoord: registry within: radius %v, want >= 0", radius)
	}
	qc := r.getQueryCtx()
	var ns []index.Neighbor
	if r.useParallel() {
		qc.op = opWithin
		qc.from = from
		qc.radius = radius
		r.dispatch(qc, len(r.shards))
		total := 0
		for si := range r.shards {
			total += len(qc.wbufs[si])
		}
		if cap(qc.wmerge) < total {
			qc.wmerge = make([]index.Neighbor, 0, total)
		}
		qc.wmerge = qc.wmerge[:0]
		for si := range r.shards {
			qc.wmerge = append(qc.wmerge, qc.wbufs[si]...)
		}
		ns = qc.wmerge
	} else {
		buf := qc.wmerge[:0]
		for _, s := range r.shards {
			s.mu.RLock()
			buf = searchShardWithin(s, from, radius, buf)
			s.mu.RUnlock()
		}
		qc.wmerge = buf
		ns = buf
	}
	index.SortNeighbors(ns)
	out := make([]Ranked, len(ns))
	for i, n := range ns {
		out[i] = Ranked{
			Candidate:    Candidate{ID: n.ID, Coord: n.Coord},
			EstimatedRTT: n.Distance,
		}
	}
	r.putQueryCtx(qc)
	return out, nil
}

// NearestQuery is one point query of a NearestBatch.
type NearestQuery struct {
	// From is the query coordinate.
	From Coordinate
	// K bounds the result count; it must be > 0.
	K int
	// Exclude drops this id from the results (the NearestTo shape);
	// empty excludes nothing.
	Exclude string
	// HasRadius restricts results to estimated RTT <= RadiusMillis (the
	// WithinLimit shape). With HasRadius false, RadiusMillis is ignored.
	HasRadius bool
	// RadiusMillis is the radius bound when HasRadius is set.
	RadiusMillis float64
}

// WithinQuery is one radius query of a WithinBatch.
type WithinQuery struct {
	// From is the query coordinate.
	From Coordinate
	// RadiusMillis is the inclusive RTT radius; it must be >= 0.
	RadiusMillis float64
}

// boundFor is the pruning bound a batched query starts from.
func boundFor(q *NearestQuery) float64 {
	if q.HasRadius {
		return q.RadiusMillis
	}
	return inf()
}

// perShardFor is the per-shard candidate count a batched query needs:
// one extra when an exclusion could displace a winner.
func perShardFor(q *NearestQuery) int {
	if q.Exclude != "" {
		return q.K + 1
	}
	return q.K
}

// NearestBatch answers many point queries in one call. The whole batch
// is validated first: on error, no query ran and the slice is nil.
// Results per query match the equivalent single call exactly. On the
// parallel path the batch is executed shard-major — one pool dispatch
// per chunk, every worker answering all of the chunk's queries against
// its shard while the shard's tree stays cache-hot — which is what the
// watch hub's resync recompute and POST /nearest/batch ride on.
func (r *Registry) NearestBatch(queries []NearestQuery) ([][]Ranked, error) {
	for i := range queries {
		q := &queries[i]
		if q.K <= 0 {
			return nil, fmt.Errorf("netcoord: registry batch query %d: k = %d, want > 0", i, q.K)
		}
		if err := q.From.Validate(r.dim); err != nil {
			return nil, fmt.Errorf("netcoord: registry batch query %d: %w", i, err)
		}
		if q.HasRadius && (q.RadiusMillis < 0 || math.IsNaN(q.RadiusMillis)) {
			return nil, fmt.Errorf("netcoord: registry batch query %d: radius %v, want >= 0", i, q.RadiusMillis)
		}
	}
	r.queries.Add(uint64(len(queries)))
	out := make([][]Ranked, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	if !r.useParallel() {
		for i := range queries {
			q := &queries[i]
			res, err := r.nearestInto(q.From, q.K, q.Exclude, boundFor(q), make([]Ranked, 0, q.K))
			if err != nil {
				// Unreachable: the batch was validated above.
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}

	nShards := len(r.shards)
	chunkCap := maxBatchArena / nShards
	qc := r.getQueryCtx()
	lo := 0
	for lo < len(queries) {
		// Extend the chunk while its arena stride stays under budget;
		// a single oversized query still forms a chunk of one.
		hi := lo
		block := 0
		qc.offs = qc.offs[:0]
		for hi < len(queries) {
			ps := perShardFor(&queries[hi])
			if hi > lo && block+ps > chunkCap {
				break
			}
			qc.offs = append(qc.offs, block)
			block += ps
			hi++
		}
		qc.offs = append(qc.offs, block)
		nq := hi - lo
		qc.batch = queries[lo:hi]
		qc.block = block
		if cap(qc.bounds) < nq {
			qc.bounds = make([]index.Bound, nq)
		}
		qc.bounds = qc.bounds[:nq]
		for q := 0; q < nq; q++ {
			qc.bounds[q].Reset(boundFor(&queries[lo+q]))
		}
		if cap(qc.counts) < nShards*nq {
			qc.counts = make([]int, nShards*nq)
		}
		qc.counts = qc.counts[:nShards*nq]
		if cap(qc.arena) < nShards*block {
			qc.arena = make([]index.Neighbor, nShards*block)
		}
		qc.arena = qc.arena[:nShards*block]

		qc.op = opBatchNearest
		r.dispatch(qc, nShards)

		for q := 0; q < nq; q++ {
			bq := &queries[lo+q]
			m := qc.merge
			m.Reset(qc.offs[q+1] - qc.offs[q])
			for si := 0; si < nShards; si++ {
				seg := qc.arena[si*block+qc.offs[q]:]
				for _, n := range seg[:qc.counts[si*nq+q]] {
					m.Offer(n)
				}
			}
			ns := m.Items()
			index.SortNeighbors(ns)
			res := make([]Ranked, 0, min(bq.K, len(ns)))
			for _, n := range ns {
				if n.ID == bq.Exclude {
					continue
				}
				res = append(res, Ranked{
					Candidate:    Candidate{ID: n.ID, Coord: n.Coord},
					EstimatedRTT: n.Distance,
				})
				if len(res) == bq.K {
					break
				}
			}
			out[lo+q] = res
		}
		lo = hi
	}
	r.putQueryCtx(qc)
	return out, nil
}

// WithinBatch answers many radius queries in one call, shard-major on
// the parallel path like NearestBatch. The whole batch is validated
// first: on error, no query ran and the slice is nil.
func (r *Registry) WithinBatch(queries []WithinQuery) ([][]Ranked, error) {
	for i := range queries {
		q := &queries[i]
		if err := q.From.Validate(r.dim); err != nil {
			return nil, fmt.Errorf("netcoord: registry batch query %d: %w", i, err)
		}
		if q.RadiusMillis < 0 || math.IsNaN(q.RadiusMillis) {
			return nil, fmt.Errorf("netcoord: registry batch query %d: radius %v, want >= 0", i, q.RadiusMillis)
		}
	}
	r.queries.Add(uint64(len(queries)))
	out := make([][]Ranked, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	if !r.useParallel() {
		for i := range queries {
			res, err := r.withinRanked(queries[i].From, queries[i].RadiusMillis)
			if err != nil {
				// Unreachable: the batch was validated above.
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}

	nShards := len(r.shards)
	nq := len(queries)
	qc := r.getQueryCtx()
	qc.wqueries = queries
	if cap(qc.counts) < nShards*nq {
		qc.counts = make([]int, nShards*nq)
	}
	qc.counts = qc.counts[:nShards*nq]

	qc.op = opBatchWithin
	r.dispatch(qc, nShards)

	// Gather: each shard's buffer holds its matches back-to-back in
	// query order, so one running offset per shard walks them out.
	if cap(qc.offs) < nShards {
		qc.offs = make([]int, nShards)
	}
	qc.offs = qc.offs[:nShards]
	for si := range qc.offs {
		qc.offs[si] = 0
	}
	for q := 0; q < nq; q++ {
		qc.wmerge = qc.wmerge[:0]
		for si := 0; si < nShards; si++ {
			c := qc.counts[si*nq+q]
			qc.wmerge = append(qc.wmerge, qc.wbufs[si][qc.offs[si]:qc.offs[si]+c]...)
			qc.offs[si] += c
		}
		index.SortNeighbors(qc.wmerge)
		res := make([]Ranked, len(qc.wmerge))
		for i, n := range qc.wmerge {
			res[i] = Ranked{
				Candidate:    Candidate{ID: n.ID, Coord: n.Coord},
				EstimatedRTT: n.Distance,
			}
		}
		out[q] = res
	}
	r.putQueryCtx(qc)
	return out, nil
}
