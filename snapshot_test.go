package netcoord

import (
	"math"
	"testing"
)

// convergedClient builds a client that has seen enough observations to
// hold a meaningful coordinate.
func convergedClient(t *testing.T) *Client {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 7
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	remote := Origin(3)
	for i := 0; i < 100; i++ {
		if _, err := c.Observe("peer", 60, remote, 0.5); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	return c
}

func TestSnapshotCapturesState(t *testing.T) {
	c := convergedClient(t)
	s := c.Snapshot()
	if s.Version != snapshotVersion {
		t.Fatalf("Version = %d", s.Version)
	}
	if !s.Sys.Equal(c.Coordinate()) {
		t.Fatalf("Sys = %v, want %v", s.Sys, c.Coordinate())
	}
	if s.Error != c.Error() {
		t.Fatalf("Error = %v, want %v", s.Error, c.Error())
	}
	if s.Sys.Vec.Norm() == 0 {
		t.Fatal("snapshot captured an unconverged origin coordinate")
	}
}

func TestRestoreRoundTrip(t *testing.T) {
	orig := convergedClient(t)
	s := orig.Snapshot()

	fresh, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := fresh.Restore(s); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !fresh.Coordinate().Equal(s.Sys) {
		t.Fatalf("restored coordinate %v != snapshot %v", fresh.Coordinate(), s.Sys)
	}
	if fresh.Error() != s.Error {
		t.Fatalf("restored error %v != snapshot %v", fresh.Error(), s.Error)
	}
	// The app coordinate resumes the persisted published position — not
	// the system coordinate, which would jump the published coordinate
	// on every restart (the regression this guards against).
	if !fresh.AppCoordinate().Equal(s.App) {
		t.Fatalf("restored app coordinate %v, want persisted %v", fresh.AppCoordinate(), s.App)
	}
}

func TestRestoreKeepsStablePublishedApp(t *testing.T) {
	// With the ENERGY policy the app coordinate stays at its last
	// published position while the system coordinate keeps evolving, so
	// a converged client has App != Sys. A restart must resume the
	// published App, not republish at Sys.
	orig := convergedClient(t)
	s := orig.Snapshot()
	if s.App.Equal(s.Sys) {
		t.Fatal("test premise broken: snapshot App == Sys, cannot distinguish priming")
	}
	fresh, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := fresh.Restore(s); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got := fresh.AppCoordinate(); !got.Equal(s.App) {
		t.Fatalf("restart published app coordinate %v, want persisted %v", got, s.App)
	}
}

func TestRestoreRejectsBadAppCoordinate(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s := Snapshot{Version: snapshotVersion, Sys: Origin(3), App: Origin(2)}
	if err := c.Restore(s); err == nil {
		t.Fatal("wrong-dimension app coordinate accepted")
	}
}

func TestRestoreResumesConvergedState(t *testing.T) {
	// A restored client should predict latencies immediately, without
	// re-convergence.
	orig := convergedClient(t)
	snap := orig.Snapshot()
	restored, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := restored.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	est, err := restored.DistanceTo(Origin(3))
	if err != nil {
		t.Fatalf("DistanceTo: %v", err)
	}
	if math.Abs(est-60) > 10 {
		t.Fatalf("restored estimate %v, want ~60 (converged)", est)
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	tests := []struct {
		name string
		s    Snapshot
	}{
		{name: "wrong version", s: Snapshot{Version: 99, Sys: Origin(3)}},
		{name: "wrong dimension", s: Snapshot{Version: snapshotVersion, Sys: Origin(2)}},
		{
			name: "nan coordinate",
			s: func() Snapshot {
				sys := Origin(3)
				sys.Vec[0] = math.NaN()
				return Snapshot{Version: snapshotVersion, Sys: sys}
			}(),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := c.Restore(tt.s); err == nil {
				t.Fatal("bad snapshot accepted")
			}
		})
	}
}

func TestRestoreClampsErrorWeight(t *testing.T) {
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	s := Snapshot{Version: snapshotVersion, Sys: Origin(3), App: Origin(3), Error: 5}
	if err := c.Restore(s); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if w := c.Error(); w <= 0 || w > 1 {
		t.Fatalf("restored error weight %v escaped (0, 1]", w)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	orig := convergedClient(t).Snapshot()
	data, err := orig.MarshalBinaryJSON()
	if err != nil {
		t.Fatalf("MarshalBinaryJSON: %v", err)
	}
	back, err := ParseSnapshot(data)
	if err != nil {
		t.Fatalf("ParseSnapshot: %v", err)
	}
	if !back.Sys.Equal(orig.Sys) || back.Error != orig.Error || back.Version != orig.Version {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, orig)
	}
}

func TestParseSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ParseSnapshot([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestRestoreThenObserveContinues(t *testing.T) {
	// After a restore, observations must keep refining normally.
	orig := convergedClient(t)
	snap := orig.Snapshot()
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := c.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	remote := Origin(3)
	for i := 0; i < 50; i++ {
		if _, err := c.Observe("peer", 60, remote, 0.5); err != nil {
			t.Fatalf("Observe after restore: %v", err)
		}
	}
	est, err := c.DistanceTo(remote)
	if err != nil {
		t.Fatalf("DistanceTo: %v", err)
	}
	if math.Abs(est-60) > 8 {
		t.Fatalf("estimate %v after restore+observe, want ~60", est)
	}
}

func TestRestoreLegacySnapshotWithoutApp(t *testing.T) {
	// Version-1 blobs written before App was authoritative may omit it
	// (zero coordinate); they must still restore, primed from Sys as
	// the old behavior did.
	c, err := NewClient(DefaultConfig())
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	sys := c3(10, -5, 2)
	if err := c.Restore(Snapshot{Version: snapshotVersion, Sys: sys, Error: 0.4}); err != nil {
		t.Fatalf("Restore of legacy App-less snapshot: %v", err)
	}
	if !c.AppCoordinate().Equal(sys) {
		t.Fatalf("legacy restore app = %v, want primed from sys %v", c.AppCoordinate(), sys)
	}
}
