package netcoord

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkRecover measures warm-restart recovery: opening a data
// directory holding a 100k-entry snapshot plus a 10k-record WAL tail,
// through snapshot load, tail replay, and the registry's bulk
// UpsertBatch/index.Build path. This is the time a restarted ncserve
// spends before it can serve its first query warm.
func BenchmarkRecover(b *testing.B) {
	const (
		snapshotN = 100_000
		tailN     = 10_000
	)
	dir := b.TempDir()
	prep, err := OpenPersistentRegistry(PersistentRegistryConfig{
		Dir:              dir,
		SnapshotInterval: -1,
		NoSync:           true,
	})
	if err != nil {
		b.Fatalf("OpenPersistentRegistry: %v", err)
	}
	batch := make([]RegistryEntry, snapshotN)
	at := time.Unix(1_700_000_000, 0)
	for i := range batch {
		batch[i] = RegistryEntry{
			ID:        fmt.Sprintf("node-%07d", i),
			Coord:     c3(float64(i%1009), float64(i%601), float64(i%251)),
			Error:     0.2,
			UpdatedAt: at,
		}
	}
	if err := prep.UpsertBatch(batch); err != nil {
		b.Fatalf("UpsertBatch: %v", err)
	}
	if err := prep.Compact(); err != nil {
		b.Fatalf("Compact: %v", err)
	}
	for i := 0; i < tailN; i++ {
		if err := prep.Upsert(fmt.Sprintf("node-%07d", i), c3(float64(i%1009)+1, 0, 0), 0.2); err != nil {
			b.Fatalf("Upsert: %v", err)
		}
	}
	if err := prep.Close(); err != nil {
		b.Fatalf("Close: %v", err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := OpenPersistentRegistry(PersistentRegistryConfig{
			Dir:              dir,
			SnapshotInterval: -1,
			NoSync:           true,
		})
		if err != nil {
			b.Fatalf("recover: %v", err)
		}
		if p.Len() != snapshotN {
			b.Fatalf("recovered %d entries, want %d", p.Len(), snapshotN)
		}
		b.StopTimer()
		if err := p.Close(); err != nil {
			b.Fatalf("Close: %v", err)
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(snapshotN+tailN)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}
