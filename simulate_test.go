package netcoord

import "testing"

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimulationConfig{Nodes: 2, Seconds: 600}); err == nil {
		t.Fatal("tiny node count accepted")
	}
	if _, err := Simulate(SimulationConfig{Nodes: 16, Seconds: 10}); err == nil {
		t.Fatal("tiny duration accepted")
	}
	bad := SimulationConfig{Nodes: 16, Seconds: 600}
	bad.Client = DefaultConfig()
	bad.Client.FilterPercentile = 200
	if _, err := Simulate(bad); err == nil {
		t.Fatal("bad client config accepted")
	}
}

func TestSimulateDefaultsReproducePaperShape(t *testing.T) {
	res, err := Simulate(SimulationConfig{Nodes: 24, Seconds: 900, Seed: 5})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Samples == 0 {
		t.Fatal("no samples processed")
	}
	// Converged accuracy, and the app stream far more stable than the
	// system stream at comparable accuracy.
	if res.System.MedianRelErr > 0.3 {
		t.Fatalf("system median rel err = %v", res.System.MedianRelErr)
	}
	if res.App.MedianInstability >= res.System.MedianInstability {
		t.Fatalf("app instability %v not below system %v",
			res.App.MedianInstability, res.System.MedianInstability)
	}
	if res.App.UpdatesPerSecond >= res.System.UpdatesPerSecond {
		t.Fatal("app updates not suppressed")
	}
}

func TestSimulateFilterComparison(t *testing.T) {
	// The facade must let a user reproduce the paper's core comparison
	// in a few lines.
	base := SimulationConfig{Nodes: 24, Seconds: 900, Seed: 6}
	withFilter, err := Simulate(base)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	noFilter := base
	noFilter.Client = DefaultConfig()
	noFilter.Client.DisableFilter = true
	without, err := Simulate(noFilter)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if withFilter.System.MedianRelErr >= without.System.MedianRelErr {
		t.Fatalf("filtered err %v >= unfiltered %v",
			withFilter.System.MedianRelErr, without.System.MedianRelErr)
	}
	if withFilter.System.MedianInstability >= without.System.MedianInstability {
		t.Fatalf("filtered instability %v >= unfiltered %v",
			withFilter.System.MedianInstability, without.System.MedianInstability)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := SimulationConfig{Nodes: 12, Seconds: 300, Seed: 7}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if a != b {
		t.Fatalf("same-seed simulations diverged:\n%+v\n%+v", a, b)
	}
}

func TestSimulateWithChurn(t *testing.T) {
	res, err := Simulate(SimulationConfig{Nodes: 16, Seconds: 600, Seed: 8, Churn: true})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Samples == 0 {
		t.Fatal("no samples under churn")
	}
	// Fewer samples than the no-churn run (late joiners skip early ticks).
	full, err := Simulate(SimulationConfig{Nodes: 16, Seconds: 600, Seed: 8})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Samples >= full.Samples {
		t.Fatalf("churn run processed %d samples vs %d without churn", res.Samples, full.Samples)
	}
}

func TestSimulateParallelismBitIdentical(t *testing.T) {
	// The public facade's guarantee: Parallelism is purely a wall-clock
	// knob. Sequential and parallel runs of the same configuration must
	// produce the same SimulationResult, field for field.
	for _, churn := range []bool{false, true} {
		base := SimulationConfig{Nodes: 24, Seconds: 300, Seed: 9, Churn: churn, Parallelism: 1}
		seq, err := Simulate(base)
		if err != nil {
			t.Fatalf("sequential Simulate: %v", err)
		}
		par := base
		par.Parallelism = 6
		got, err := Simulate(par)
		if err != nil {
			t.Fatalf("parallel Simulate: %v", err)
		}
		if seq != got {
			t.Fatalf("churn=%v: parallel result diverged:\nseq: %+v\npar: %+v", churn, seq, got)
		}
	}
}
