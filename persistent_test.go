package netcoord

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// openTestPR opens a persistent registry with test-friendly options.
func openTestPR(t *testing.T, dir string, reg RegistryConfig) *PersistentRegistry {
	t.Helper()
	p, err := OpenPersistentRegistry(PersistentRegistryConfig{
		Registry:         reg,
		Dir:              dir,
		SnapshotInterval: -1, // compact manually
		NoSync:           true,
	})
	if err != nil {
		t.Fatalf("OpenPersistentRegistry: %v", err)
	}
	return p
}

func TestPersistentRegistryRestartWarm(t *testing.T) {
	dir := t.TempDir()
	base := time.Unix(1_700_000_000, 0)
	clock := func() time.Time { return base }

	p := openTestPR(t, dir, RegistryConfig{Clock: clock})
	for i := 0; i < 40; i++ {
		if err := p.Upsert(fmt.Sprintf("n%02d", i), c3(float64(i), 0, 0), 0.1); err != nil {
			t.Fatalf("Upsert: %v", err)
		}
	}
	if !p.Remove("n00") {
		t.Fatal("Remove: n00 missing")
	}
	before := p.Snapshot()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2 := openTestPR(t, dir, RegistryConfig{Clock: clock})
	defer p2.Close()
	after := p2.Snapshot()
	if len(after) != len(before) {
		t.Fatalf("recovered %d entries, want %d", len(after), len(before))
	}
	for i := range before {
		b, a := before[i], after[i]
		if a.ID != b.ID || !a.Coord.Equal(b.Coord) || a.Error != b.Error {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, a, b)
		}
		if !a.UpdatedAt.Equal(b.UpdatedAt) {
			t.Fatalf("entry %s UpdatedAt not preserved: %v vs %v", a.ID, a.UpdatedAt, b.UpdatedAt)
		}
	}
	// Queries work immediately on the recovered state.
	got, err := p2.NearestTo("n05", 3)
	if err != nil {
		t.Fatalf("NearestTo: %v", err)
	}
	if len(got) != 3 || got[0].ID != "n04" && got[0].ID != "n06" {
		t.Fatalf("NearestTo on recovered registry = %+v", got)
	}
	rec := p2.Recovery()
	if rec.Entries != 39 {
		t.Fatalf("Recovery.Entries = %d, want 39", rec.Entries)
	}
}

func TestPersistentRegistryCompactionAndTail(t *testing.T) {
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	for i := 0; i < 30; i++ {
		if err := p.Upsert(fmt.Sprintf("n%02d", i), c3(float64(i), 1, 1), 0); err != nil {
			t.Fatalf("Upsert: %v", err)
		}
	}
	if err := p.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Mutations after compaction land in the WAL tail.
	if err := p.Upsert("tail", c3(99, 99, 99), 0.5); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	p.Remove("n00")
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	rec := p2.Recovery()
	if rec.SnapshotEntries != 30 {
		t.Fatalf("snapshot entries = %d, want 30", rec.SnapshotEntries)
	}
	if rec.WALRecords != 2 {
		t.Fatalf("WAL tail records = %d, want 2", rec.WALRecords)
	}
	if p2.Len() != 30 { // 30 - n00 + tail
		t.Fatalf("Len = %d, want 30", p2.Len())
	}
	if _, ok := p2.Get("tail"); !ok {
		t.Fatal("WAL-tail entry lost")
	}
	if _, ok := p2.Get("n00"); ok {
		t.Fatal("WAL-tail remove lost")
	}
}

func TestPersistentRegistryTTLAcrossDowntime(t *testing.T) {
	// UpdatedAt survives restarts, so entries that went stale during
	// downtime are evicted on the first sweep — they do not get a fresh
	// lease — while still-fresh entries survive.
	dir := t.TempDir()
	base := time.Unix(1_700_000_000, 0)
	now := base
	clock := func() time.Time { return now }

	cfg := RegistryConfig{TTL: 5 * time.Minute, Clock: clock}
	p := openTestPR(t, dir, cfg)
	if err := p.Upsert("old", c3(1, 0, 0), 0); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	now = base.Add(4 * time.Minute)
	if err := p.Upsert("fresh", c3(2, 0, 0), 0); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart after 2 more minutes of downtime: "old" is now 6 minutes
	// stale (past TTL), "fresh" only 2.
	now = base.Add(6 * time.Minute)
	p2 := openTestPR(t, dir, cfg)
	defer p2.Close()
	if p2.Len() != 2 {
		t.Fatalf("recovered %d entries, want 2 before sweep", p2.Len())
	}
	if n := p2.EvictStale(); n != 1 {
		t.Fatalf("evicted %d entries, want exactly the stale one", n)
	}
	if _, ok := p2.Get("old"); ok {
		t.Fatal("stale entry survived downtime with a fresh lease")
	}
	if _, ok := p2.Get("fresh"); !ok {
		t.Fatal("fresh entry evicted")
	}

	// The eviction itself was logged: another restart must not
	// resurrect "old".
	if err := p2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p3 := openTestPR(t, dir, cfg)
	defer p3.Close()
	if _, ok := p3.Get("old"); ok {
		t.Fatal("logged eviction lost: stale entry resurrected on second restart")
	}
}

func TestPersistentRegistryFeedIsLogged(t *testing.T) {
	// Mutations arriving through Feed (the live-node path) go through
	// the same hook as direct upserts.
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	updates := make(chan NodeUpdate, 4)
	stop := p.Feed("live", updates)
	updates <- NodeUpdate{Coord: c3(5, 5, 5), Error: 0.3}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := p.Get("live"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("feed update never applied")
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	e, ok := p2.Get("live")
	if !ok || !e.Coord.Equal(c3(5, 5, 5)) {
		t.Fatalf("fed entry not recovered: %+v %v", e, ok)
	}
}

func TestPersistentRegistryRecoveryUsesBulkBuild(t *testing.T) {
	n := 20000
	if testing.Short() {
		n = 2000
	}
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	batch := make([]RegistryEntry, n)
	for i := range batch {
		batch[i] = RegistryEntry{
			ID:    fmt.Sprintf("node-%06d", i),
			Coord: c3(float64(i%503), float64(i%211), float64(i%97)),
		}
	}
	if err := p.UpsertBatch(batch); err != nil {
		t.Fatalf("UpsertBatch: %v", err)
	}
	if err := p.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	if p2.Len() != n {
		t.Fatalf("recovered %d entries, want %d", p2.Len(), n)
	}
	// Recovery loads through UpsertBatch on empty shards, which
	// bulk-builds each shard's kd-tree balanced in one pass — zero
	// incremental rebuilds is the signature of that path.
	if st := p2.Stats(); st.IndexRebuilds != 0 {
		t.Fatalf("recovery triggered %d incremental index rebuilds; bulk path not taken", st.IndexRebuilds)
	}
}

func TestPersistentRegistryRejectsDimensionMismatch(t *testing.T) {
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{Dimension: 3})
	if err := p.Upsert("a", c3(1, 2, 3), 0); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := OpenPersistentRegistry(PersistentRegistryConfig{
		Registry: RegistryConfig{Dimension: 2},
		Dir:      dir,
		NoSync:   true,
	}); err == nil {
		t.Fatal("dimension-mismatched data directory accepted")
	}
}

func TestOpenPersistentRegistryValidation(t *testing.T) {
	if _, err := OpenPersistentRegistry(PersistentRegistryConfig{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := OpenPersistentRegistry(PersistentRegistryConfig{
		Dir:      t.TempDir(),
		Registry: RegistryConfig{Dimension: 40},
	}); err == nil {
		t.Fatal("unpersistable dimension accepted")
	}
}

func TestPersistentRegistryRejectsOversizedID(t *testing.T) {
	// An id the WAL cannot encode must be rejected at the API, not
	// accepted into memory while being silently non-durable (which
	// would also wedge every snapshot write).
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	defer p.Close()
	long := strings.Repeat("x", 5000)
	if err := p.Upsert(long, c3(1, 2, 3), 0); err == nil {
		t.Fatal("oversized id accepted by persistent registry")
	}
	if err := p.UpsertBatch([]RegistryEntry{
		{ID: "ok", Coord: c3(1, 2, 3)},
		{ID: long, Coord: c3(1, 2, 3)},
	}); err == nil {
		t.Fatal("oversized id accepted via batch")
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d after rejected upserts, want 0 (batch atomicity)", p.Len())
	}
	if err := p.Upsert("ok", c3(1, 2, 3), 0); err != nil {
		t.Fatalf("normal upsert rejected: %v", err)
	}
	if err := p.Compact(); err != nil {
		t.Fatalf("Compact after rejected ids: %v", err)
	}
	if st := p.PersistStats(); st.Dropped != 0 || st.CompactFailures != 0 {
		t.Fatalf("persistence degraded: dropped=%d compactFailures=%d", st.Dropped, st.CompactFailures)
	}
}

func TestPersistentRegistryJanitorEvictionLogged(t *testing.T) {
	// The TTL janitor starts only after the recorder is installed, so
	// every eviction it performs is durable: a restart must not
	// resurrect janitor-evicted entries.
	dir := t.TempDir()
	p, err := OpenPersistentRegistry(PersistentRegistryConfig{
		Registry:         RegistryConfig{TTL: 20 * time.Millisecond, JanitorInterval: 5 * time.Millisecond},
		Dir:              dir,
		SnapshotInterval: -1,
		NoSync:           true,
	})
	if err != nil {
		t.Fatalf("OpenPersistentRegistry: %v", err)
	}
	if err := p.Upsert("ephemeral", c3(1, 0, 0), 0); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := p.Get("ephemeral"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the stale entry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	if _, ok := p2.Get("ephemeral"); ok {
		t.Fatal("janitor eviction was not logged: entry resurrected on restart")
	}
}

func TestPersistentRegistryEpochSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	if err := p.Upsert("a", c3(1, 0, 0), 0.1); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if got := p.ChangeEpoch(); got != 0 {
		t.Fatalf("fresh registry epoch = %d, want 0", got)
	}
	epoch, err := p.Fence()
	if err != nil {
		t.Fatalf("Fence: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("Fence epoch = %d, want 1", epoch)
	}
	// Fencing is cumulative: a second fence keeps climbing.
	if epoch, err = p.Fence(); err != nil || epoch != 2 {
		t.Fatalf("second Fence = %d, %v; want 2", epoch, err)
	}
	// Post-fence mutations are stamped with the new epoch.
	if err := p.Upsert("b", c3(2, 0, 0), 0.1); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	seq := p.ChangeSeq()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	if got := p2.ChangeEpoch(); got != 2 {
		t.Fatalf("recovered epoch = %d, want 2", got)
	}
	if got := p2.ChangeSeq(); got != seq {
		t.Fatalf("recovered seq = %d, want %d", got, seq)
	}
	// New mutations continue under the recovered epoch.
	if err := p2.Upsert("c", c3(3, 0, 0), 0.1); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	evs, err := p2.ChangesSince(seq, -1)
	if err != nil || len(evs) != 1 {
		t.Fatalf("ChangesSince(%d) = %v, %v", seq, evs, err)
	}
	if evs[0].Epoch != 2 {
		t.Fatalf("post-restart event epoch = %d, want 2", evs[0].Epoch)
	}
}

func TestPersistentRegistryTombstonesSurviveRestart(t *testing.T) {
	// A follower that bootstrapped at seq S asks the restarted leader for
	// /snapshot?since=S. The delta's removed list comes from tombstone
	// knowledge, which must therefore be durable — otherwise the restart
	// silently forgets removals and the follower resurrects dead nodes.
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	for i := 0; i < 8; i++ {
		if err := p.Upsert(fmt.Sprintf("n%d", i), c3(float64(i), 0, 0), 0.1); err != nil {
			t.Fatalf("Upsert: %v", err)
		}
	}
	mark := p.ChangeSeq() // a follower's resume point, before the removals
	p.Remove("n0")
	p.Remove("n1")
	// Compact so the tombstones must travel through the snapshot, not
	// just WAL replay.
	if err := p.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	entries, removed, _, ok := p2.DeltaSince(mark)
	if !ok {
		t.Fatalf("DeltaSince(%d) not provable after restart; tombstones lost", mark)
	}
	// Per-entry sequences are not persisted, so a recovered delta may
	// conservatively over-include live entries — but it must never
	// resurrect a removed one.
	for _, e := range entries {
		if e.ID == "n0" || e.ID == "n1" {
			t.Fatalf("delta resurrected removed entry %s", e.ID)
		}
	}
	if len(removed) != 2 {
		t.Fatalf("delta removed = %v, want [n0 n1]", removed)
	}
	seen := map[string]bool{}
	for _, id := range removed {
		seen[id] = true
	}
	if !seen["n0"] || !seen["n1"] {
		t.Fatalf("delta removed = %v, want n0 and n1", removed)
	}
}
