// Registry and selection benchmarks: the spatial index versus the
// brute-force scan at increasing scale. The acceptance bar for the
// registry subsystem is Nearest(k=8) at n=100k answering >= 10x faster
// than the brute-force Nearest over the same entries.
//
//	go test -bench 'RegistryNearest|BruteNearest' -benchtime 1x
package netcoord

import (
	"fmt"
	"testing"
	"time"

	"netcoord/internal/changefeed"
	"netcoord/internal/telemetry"
	"netcoord/internal/xrand"
)

// benchSizes are the registry populations benchmarked. 1M demonstrates
// the "millions of users" regime; its setup builds the index once and is
// excluded from timing.
var benchSizes = []int{10_000, 100_000, 1_000_000}

// buildBenchRegistry populates a registry (and a parallel candidate
// slice for the brute-force baseline) with n random coordinates.
func buildBenchRegistry(b *testing.B, n int) (*Registry, []Candidate) {
	return buildBenchRegistryCfg(b, n, RegistryConfig{})
}

func buildBenchRegistryCfg(b *testing.B, n int, cfg RegistryConfig) (*Registry, []Candidate) {
	b.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(r.Close)
	rng := xrand.NewStream(uint64(n))
	batch := make([]RegistryEntry, 0, 1024)
	cands := make([]Candidate, 0, n)
	for i := 0; i < n; i++ {
		c := Origin(3)
		for d := range c.Vec {
			c.Vec[d] = rng.Uniform(0, 300)
		}
		id := fmt.Sprintf("node-%07d", i)
		batch = append(batch, RegistryEntry{ID: id, Coord: c})
		cands = append(cands, Candidate{ID: id, Coord: c})
		if len(batch) == cap(batch) {
			if err := r.UpsertBatch(batch); err != nil {
				b.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := r.UpsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	return r, cands
}

func benchQuery(rng *xrand.Stream) Coordinate {
	q := Origin(3)
	for d := range q.Vec {
		q.Vec[d] = rng.Uniform(0, 300)
	}
	return q
}

// benchQueryCoords pre-generates query points so the measured loop pays
// for the query engine only — required by the zero-alloc gates, since
// building a Coordinate allocates its vector.
func benchQueryCoords(seed uint64, n int) []Coordinate {
	rng := xrand.NewStream(seed)
	out := make([]Coordinate, n)
	for i := range out {
		out[i] = benchQuery(rng)
	}
	return out
}

// BenchmarkRegistryNearest measures k=8 proximity queries against the
// sharded kd-tree registry through the zero-allocation NearestInto
// path. CI gates allocs/op == 0 on every BenchmarkRegistryNearest*
// variant via tools/benchjson -require-zero-alloc: the query context
// pool plus caller-owned result storage make the steady-state read
// path garbage-free at every population.
func BenchmarkRegistryNearest(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r, _ := buildBenchRegistry(b, n)
			queries := benchQueryCoords(99, 4096)
			dst := make([]Ranked, 0, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.NearestInto(queries[i&4095], 8, dst)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 8 {
					b.Fatalf("got %d results", len(res))
				}
				dst = res[:0]
			}
		})
	}
}

// BenchmarkRegistryNearestSeq pins the sequential engine (one shard
// walk carrying a single heap) as the fan-out's baseline: the speedup
// claimed for the parallel path is Seq time over Parallel time on the
// same population, and both must stay allocation-free.
func BenchmarkRegistryNearestSeq(b *testing.B) {
	for _, shards := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			r, _ := buildBenchRegistryCfg(b, 100_000, RegistryConfig{Shards: shards, QueryParallelism: 1})
			queries := benchQueryCoords(99, 4096)
			dst := make([]Ranked, 0, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := r.NearestInto(queries[i&4095], 8, dst)
				if err != nil {
					b.Fatal(err)
				}
				dst = res[:0]
			}
		})
	}
}

// BenchmarkRegistryNearestParallel exercises the cross-shard fan-out
// across the shards × k grid at n=100k. QueryParallelism 0 resolves to
// GOMAXPROCS, so on a single-core runner this measures the crossover
// fallback (parity with Seq is the expectation there); on multi-core
// CI it measures the fan-out itself.
func BenchmarkRegistryNearestParallel(b *testing.B) {
	for _, shards := range []int{4, 16, 64} {
		for _, k := range []int{8, 64} {
			b.Run(fmt.Sprintf("shards=%d/k=%d", shards, k), func(b *testing.B) {
				r, _ := buildBenchRegistryCfg(b, 100_000, RegistryConfig{Shards: shards})
				queries := benchQueryCoords(99, 4096)
				dst := make([]Ranked, 0, k)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := r.NearestInto(queries[i&4095], k, dst)
					if err != nil {
						b.Fatal(err)
					}
					if len(res) != k {
						b.Fatalf("got %d results", len(res))
					}
					dst = res[:0]
				}
			})
		}
	}
}

// BenchmarkNearestBatch measures the shard-major batched read path: 256
// queries answered in one Registry dispatch, the shape the /nearest/batch
// endpoint and the watch hub's coalesced resyncs produce. Reported
// per-op time covers the whole batch; divide by 256 to compare with
// BenchmarkRegistryNearest.
func BenchmarkNearestBatch(b *testing.B) {
	const batchSize = 256
	r, _ := buildBenchRegistry(b, 100_000)
	coords := benchQueryCoords(99, batchSize)
	queries := make([]NearestQuery, batchSize)
	for i := range queries {
		queries[i] = NearestQuery{From: coords[i], K: 8}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.NearestBatch(queries)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != batchSize {
			b.Fatalf("got %d result sets", len(res))
		}
	}
}

// BenchmarkBruteNearest is the baseline the index must beat: the
// O(n log k) scan over a candidate slice of the same n coordinates.
func BenchmarkBruteNearest(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			_, cands := buildBenchRegistry(b, n)
			rng := xrand.NewStream(99)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Nearest(benchQuery(rng), cands, 8)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 8 {
					b.Fatalf("got %d results", len(res))
				}
			}
		})
	}
}

// BenchmarkRegistryUpsert measures steady-state refresh throughput: the
// write path a heartbeat-driven deployment exercises continuously.
func BenchmarkRegistryUpsert(b *testing.B) {
	r, _ := buildBenchRegistry(b, 100_000)
	rng := xrand.NewStream(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("node-%07d", rng.Intn(100_000))
		if err := r.Upsert(id, benchQuery(rng), 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryMutationBare and ...Instrumented bound the cost of
// observability on the write path. Bare is the served mutation as-is —
// which already includes the change stream's publish stamp; the
// instrumented variant adds the per-mutation telemetry the serving
// stack layers on top (a latency observation and a counter). Both must
// stay allocation-free: ids and coordinates are pre-generated so the
// loop measures Upsert, not fmt. CI gates allocs/op == 0 on both via
// tools/benchjson -require-zero-alloc.
func benchMutationFixtures(b *testing.B) (*Registry, []string, []Coordinate) {
	b.Helper()
	const n = 100_000
	r, _ := buildBenchRegistry(b, n)
	// The serving stack always runs with the change stream on, but the
	// shared bench registry is built without one — install a feed (as
	// recovery does) carrying a nonzero fencing epoch, so the measured
	// path includes the sequencing and epoch stamp a post-promotion
	// leader pays. The zero-alloc gate then proves fencing costs no
	// garbage on the write path.
	feed := changefeed.New(DefaultChangeStreamBuffer, 0)
	feed.SetEpoch(3)
	r.installFeed(feed)
	rng := xrand.NewStream(7)
	ids := make([]string, 4096)
	coords := make([]Coordinate, 4096)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%07d", rng.Intn(n))
		coords[i] = benchQuery(rng)
	}
	return r, ids, coords
}

func BenchmarkTelemetryMutationBare(b *testing.B) {
	r, ids, coords := benchMutationFixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 4095
		if err := r.Upsert(ids[j], coords[j], 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryMutationInstrumented(b *testing.B) {
	r, ids, coords := benchMutationFixtures(b)
	hist := telemetry.NewHistogram()
	var count telemetry.Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & 4095
		start := time.Now()
		if err := r.Upsert(ids[j], coords[j], 0.3); err != nil {
			b.Fatal(err)
		}
		hist.Observe(time.Since(start).Nanoseconds())
		count.Inc()
	}
	if hist.Summary().Count == 0 || count.Value() == 0 {
		b.Fatal("instruments saw no observations")
	}
}

// BenchmarkNearestHeap and BenchmarkNearestFullSort quantify the
// bounded-heap win in the one-shot selection API for k << n.
func BenchmarkNearestHeap(b *testing.B) {
	_, cands := buildBenchRegistry(b, 100_000)
	rng := xrand.NewStream(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Nearest(benchQuery(rng), cands, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestFullSort(b *testing.B) {
	_, cands := buildBenchRegistry(b, 100_000)
	rng := xrand.NewStream(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := fullSortNearest(benchQuery(rng), cands, 8); len(got) != 8 {
			b.Fatal("full sort returned short result")
		}
	}
}
