// Simulation-engine benchmarks: the repo's perf trajectory for the hot
// reproduction loop. BenchmarkStep is the allocation gate (0 allocs/op
// at steady state, enforced by CI and by TestStepSteadyStateZeroAllocs);
// BenchmarkSimulateN256 / BenchmarkSimulateN1024 measure end-to-end
// wall-clock of the parallel tick-barrier engine, with
// BenchmarkSimulateN1024Sequential as the single-threaded oracle
// baseline the speedup is computed against. Parallel and sequential runs
// are bit-identical by construction, so the ratio is pure wall-clock.
package netcoord

import (
	"runtime"
	"testing"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// benchStepSamples pregenerates a trace so the benchmark loop measures
// Step alone, not trace synthesis.
func benchStepSamples(b *testing.B, nodes int, ticks uint64) []trace.Sample {
	b.Helper()
	net, err := netsim.New(netsim.DefaultWideArea(nodes, 1))
	if err != nil {
		b.Fatal(err)
	}
	g, err := trace.NewGenerator(net, trace.GeneratorConfig{IntervalTicks: 1, DurationTicks: ticks, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	return trace.Collect(g, 0)
}

func benchMPFactory() filter.Filter {
	f, err := filter.NewMP(filter.DefaultMPConfig())
	if err != nil {
		return filter.NewNone() // unreachable: defaults validate
	}
	return f
}

// BenchmarkStep measures the steady-state per-sample cost of the
// deployed configuration (MP filter + ENERGY policy) and reports its
// allocation count — which must be zero.
func BenchmarkStep(b *testing.B) {
	const nodes = 256
	// Warm-up must cover every node's full neighbor round-robin (nodes-1
	// ticks) so the measured loop never instantiates a fresh per-link
	// filter; 2/3 of 600 ticks = 400 > 255.
	const ticks = 600
	samples := benchStepSamples(b, nodes, ticks)
	r, err := sim.NewRunner(sim.Config{
		Nodes:   nodes,
		Vivaldi: vivaldi.DefaultConfig(),
		Filter:  benchMPFactory,
		Policy: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		},
		ExpectedTicks: ticks,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Warm to steady state: filters primed on every link, windows full,
	// every scratch buffer allocated.
	warm := len(samples) * 2 / 3
	for _, s := range samples[:warm] {
		if err := r.Step(s); err != nil {
			b.Fatal(err)
		}
	}
	// Reserve metric storage for exactly the appends the measured loop
	// will perform, so growth allocations cannot pollute the gate.
	perNode := warm/nodes + b.N/nodes + 16
	r.Sys().Reserve(ticks, perNode)
	r.App().Reserve(ticks, perNode)
	rest := samples[warm:]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Step(rest[i%len(rest)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSimulate runs the public facade end to end at the given scale.
func benchSimulate(b *testing.B, nodes, seconds, parallelism int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(SimulationConfig{
			Nodes:       nodes,
			Seconds:     seconds,
			Seed:        20050502,
			Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples == 0 {
			b.Fatal("no samples processed")
		}
		b.ReportMetric(float64(res.Samples)*float64(b.N)/b.Elapsed().Seconds(), "samples/s")
	}
}

func BenchmarkSimulateN256(b *testing.B) {
	benchSimulate(b, 256, 90, runtime.GOMAXPROCS(0))
}

func BenchmarkSimulateN1024(b *testing.B) {
	benchSimulate(b, 1024, 90, runtime.GOMAXPROCS(0))
}

func BenchmarkSimulateN1024Sequential(b *testing.B) {
	benchSimulate(b, 1024, 90, 1)
}
