package netcoord_test

import (
	"fmt"

	"netcoord"
)

// The basic loop: feed RTT measurements, read coordinates. Your wire
// protocol carries each peer's coordinate and error weight; Vivaldi
// needs both.
func ExampleClient_Observe() {
	client, err := netcoord.NewClient(netcoord.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	// A peer we have measured a steady 50 ms to. Its coordinate arrived
	// on the same message as the measurement.
	peer := netcoord.Origin(3)
	var state netcoord.State
	for i := 0; i < 100; i++ {
		state, err = client.Observe("peer-7", 50, peer, 0.5)
		if err != nil {
			fmt.Println(err)
			return
		}
	}
	est, err := client.DistanceTo(peer)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("estimate within 5ms of truth: %v\n", est > 45 && est < 55)
	fmt.Printf("confidence grew: %v\n", state.Error < 1)
	// Output:
	// estimate within 5ms of truth: true
	// confidence grew: true
}

// Latency-aware replica selection from coordinates.
func ExampleNearest() {
	self := netcoord.Origin(3)
	mk := func(x float64) netcoord.Coordinate {
		c := netcoord.Origin(3)
		c.Vec[0] = x
		return c
	}
	replicas := []netcoord.Candidate{
		{ID: "tokyo", Coord: mk(160)},
		{ID: "frankfurt", Coord: mk(90)},
		{ID: "chicago", Coord: mk(25)},
	}
	nearest, err := netcoord.Nearest(self, replicas, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, r := range nearest {
		fmt.Printf("%s %.0fms\n", r.ID, r.EstimatedRTT)
	}
	// Output:
	// chicago 25ms
	// frankfurt 90ms
}

// Stream-operator placement between two endpoints: minimize the worst
// leg.
func ExampleMinimaxPlacement() {
	mk := func(x float64) netcoord.Coordinate {
		c := netcoord.Origin(3)
		c.Vec[0] = x
		return c
	}
	producer, consumer := mk(0), mk(100)
	hosts := []netcoord.Candidate{
		{ID: "near-producer", Coord: mk(10)},
		{ID: "midpoint", Coord: mk(50)},
		{ID: "near-consumer", Coord: mk(95)},
	}
	best, err := netcoord.MinimaxPlacement([]netcoord.Coordinate{producer, consumer}, hosts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s (worst leg %.0fms)\n", best.ID, best.EstimatedRTT)
	// Output:
	// midpoint (worst leg 50ms)
}

// Evaluate configuration choices on a synthetic WAN before deploying —
// here, the paper's core claim that filtering beats raw Vivaldi.
func ExampleSimulate() {
	filtered, err := netcoord.Simulate(netcoord.SimulationConfig{
		Nodes: 16, Seconds: 600, Seed: 1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rawCfg := netcoord.DefaultConfig()
	rawCfg.DisableFilter = true
	raw, err := netcoord.Simulate(netcoord.SimulationConfig{
		Nodes: 16, Seconds: 600, Seed: 1, Client: rawCfg,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("MP filter more accurate: %v\n", filtered.System.MedianRelErr < raw.System.MedianRelErr)
	fmt.Printf("MP filter more stable:   %v\n", filtered.System.MedianInstability < raw.System.MedianInstability)
	// Output:
	// MP filter more accurate: true
	// MP filter more stable:   true
}

// Persist coordinates across restarts.
func ExampleClient_Snapshot() {
	cfg := netcoord.DefaultConfig()
	cfg.Seed = 1
	client, err := netcoord.NewClient(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	peer := netcoord.Origin(3)
	for i := 0; i < 50; i++ {
		if _, err := client.Observe("p", 60, peer, 0.5); err != nil {
			fmt.Println(err)
			return
		}
	}
	data, err := client.Snapshot().MarshalBinaryJSON()
	if err != nil {
		fmt.Println(err)
		return
	}
	// ... process restarts ...
	restored, err := netcoord.NewClient(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	snap, err := netcoord.ParseSnapshot(data)
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := restored.Restore(snap); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("resumed at the converged coordinate: %v\n",
		restored.Coordinate().Equal(client.Coordinate()))
	// Output:
	// resumed at the converged coordinate: true
}
