package netcoord

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netcoord/internal/changefeed"
	"netcoord/internal/index"
)

// ErrUnknownID is returned by id-centered registry queries (NearestTo,
// Estimate) for ids not currently registered; match with errors.Is so
// services can map it to a not-found response.
var ErrUnknownID = errors.New("netcoord: registry: unknown id")

// errEmptyUpsertID is package-level so the hot upsert paths return it
// without allocating.
var errEmptyUpsertID = errors.New("netcoord: registry upsert: empty id")

// Registry defaults.
const (
	// DefaultRegistryShards is the lock-striping factor: enough that a
	// many-core upsert storm rarely contends, small enough that fan-out
	// queries stay cheap.
	DefaultRegistryShards = 16
)

// RegistryEntry is one node stored in a Registry: its identifier, its
// (application-level) coordinate, and freshness/confidence metadata.
type RegistryEntry struct {
	// ID is the node's identifier.
	ID string
	// Coord is the node's coordinate — application-level in normal use,
	// so placements do not churn with every Vivaldi refinement.
	Coord Coordinate
	// Error is the node's Vivaldi error weight (0 = unknown/perfect,
	// toward 1 = low confidence), as carried by coordinate protocols.
	Error float64
	// UpdatedAt is when the entry was last upserted; the TTL eviction
	// clock.
	UpdatedAt time.Time
	// Seq is the change-stream sequence of the mutation that produced
	// this entry state (0 with the stream disabled). It is what lets a
	// delta snapshot answer "every entry changed since sequence N" by
	// scanning live state, without needing event history back to N.
	// Replication preserves it: a replica's entry carries the leader's
	// sequence.
	Seq uint64
}

// RegistryConfig assembles a Registry.
type RegistryConfig struct {
	// Dimension of the stored coordinates; 0 means DefaultConfig's.
	Dimension int
	// Shards is the lock-striping factor, rounded up to a power of two;
	// 0 means DefaultRegistryShards.
	Shards int
	// QueryParallelism bounds the query fan-out worker pool: 0 means
	// GOMAXPROCS, 1 forces the sequential walk (every proximity query
	// runs on its caller's goroutine), higher values cap the pool. The
	// pool is shared by all queries and started lazily on the first
	// query large enough to fan out.
	QueryParallelism int
	// TTL evicts entries not upserted within this duration; 0 disables
	// staleness eviction.
	TTL time.Duration
	// JanitorInterval is how often the background janitor sweeps when TTL
	// is set; 0 means TTL/2.
	JanitorInterval time.Duration
	// ChangeStreamBuffer enables the change stream when > 0: every
	// applied mutation is assigned a monotonic sequence number and
	// retained in an in-memory ring of this many recent events, powering
	// SubscribeChanges / ChangesSince (and, for a PersistentRegistry,
	// the WAL). 0 disables the stream for registries that never watch
	// or replicate — mutations then skip the feed's global ordering
	// lock entirely.
	ChangeStreamBuffer int
	// Clock overrides time.Now, for tests.
	Clock func() time.Time
}

// RegistryStats is an operational snapshot of a Registry.
type RegistryStats struct {
	// Entries is the number of live entries.
	Entries int `json:"entries"`
	// Shards is the configured stripe count.
	Shards int `json:"shards"`
	// Upserts, Removes, Queries, and Evictions count operations since
	// construction. Queries counts Nearest/NearestTo/Within calls.
	Upserts   uint64 `json:"upserts"`
	Removes   uint64 `json:"removes"`
	Queries   uint64 `json:"queries"`
	Evictions uint64 `json:"evictions"`
	// FeedErrors counts updates from Feed channels the registry had to
	// reject (e.g. wrong-dimension coordinates).
	FeedErrors uint64 `json:"feed_errors"`
	// IndexTombstones and IndexRebuilds aggregate the per-shard spatial
	// index internals.
	IndexTombstones int    `json:"index_tombstones"`
	IndexRebuilds   uint64 `json:"index_rebuilds"`
}

// publishUpsert is the single seam through which every applied upsert
// reaches the change stream; callers hold the owning shard's lock, so
// the published order matches the applied order for any given id. The
// feed only assigns a sequence, buffers, and enqueues — it never
// blocks on I/O — which is what makes calling it under the lock safe.
// It returns the assigned sequence (0 with the stream disabled), which
// the caller stamps onto the stored entry.
//
//nc:hotpath
//nc:locked(s.mu)
func (r *Registry) publishUpsert(e RegistryEntry) uint64 {
	if feed := r.getFeed(); feed != nil {
		return feed.PublishUpsert(changefeed.Entry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt})
	}
	return 0
}

// getFeed loads the current change feed (nil with the stream disabled).
func (r *Registry) getFeed() *changefeed.Feed {
	return r.feed.Load()
}

// installFeed replaces the registry's change feed. Two callers exist,
// both of which guarantee no mutation is in flight: persistence
// recovery (before the registry is shared) and follower promotion
// (after the tailer has fully stopped). The new feed must already be
// positioned at the stream's current sequence so the dense total order
// continues without a gap.
func (r *Registry) installFeed(feed *changefeed.Feed) {
	r.feed.Store(feed)
}

// registryShard is one lock stripe: a map for point lookups and a
// spatial index for proximity queries, kept in lockstep.
type registryShard struct {
	mu      sync.RWMutex
	entries map[string]RegistryEntry
	tree    *index.Tree
}

// Registry is a sharded, concurrency-safe store of node coordinates that
// answers k-nearest-neighbor and radius queries through a per-shard
// spatial index — the consumer layer that turns coordinates into server
// selection and operator placement decisions at scale.
//
// IDs are hashed onto shards; each shard pairs a hash map (point
// lookups) with an incremental kd-tree (proximity queries) under one
// RWMutex, so queries from many goroutines proceed in parallel and
// upserts contend only within a stripe. Proximity queries ask every
// shard for its best k and merge, which preserves exactness.
//
// Entries carry an update timestamp; configure TTL to have a background
// janitor evict nodes that stopped refreshing — crashed or partitioned
// peers age out instead of attracting traffic forever.
//
// Create with NewRegistry, stop the janitor and any feeds with Close.
type Registry struct {
	dim             int
	ttl             time.Duration
	janitorInterval time.Duration
	clock           func() time.Time

	mask   uint32
	shards []*registryShard

	upserts    atomic.Uint64
	removes    atomic.Uint64
	queries    atomic.Uint64
	evictions  atomic.Uint64
	feedErrors atomic.Uint64

	// live tracks the number of stored entries without taking shard
	// locks; the query engine's fan-out crossover reads it per query.
	// It is maintained by the mutation paths of this file only.
	live atomic.Int64

	// Query fan-out state (see query.go): the resolved worker count,
	// the shared task channel, whether the lazy pool has started, and
	// the pool of per-query scratch contexts.
	queryWorkers int
	qtasks       chan queryTask
	qstarted     atomic.Bool
	qctxPool     sync.Pool

	// feed, when non-nil, is the change stream every applied mutation is
	// published to (under the owning shard's lock, so per-id stream
	// order matches apply order); persistence taps it, subscribers and
	// replicas consume it. It is normally installed before the registry
	// is shared (construction, or persistence recovery), but promotion
	// swaps a follower's relay in as the write feed at runtime — hence
	// the atomic pointer rather than a plain field. validateID, when
	// non-nil, rejects upserts whose ids downstream consumers could not
	// represent (the persistence wire format bounds id length); an
	// accepted-but-unloggable entry would be silently non-durable.
	feed       atomic.Pointer[changefeed.Feed]
	validateID func(id string) error

	// lifeMu orders goroutine starts (janitor, feeds) against Close:
	// wg.Add never races wg.Wait, and no feed can start after Close.
	lifeMu    sync.Mutex
	closed    chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewRegistry builds a Registry and, when cfg.TTL is set, starts its
// staleness janitor. Call Close when done.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	r, err := newRegistry(cfg)
	if err != nil {
		return nil, err
	}
	r.startJanitor()
	return r, nil
}

// newRegistry builds a Registry without starting its janitor, so the
// persistence layer can finish recovery and install its change feed
// (with the recovered sequence and its WAL tap) before any background
// goroutine can mutate — an eviction during recovery would otherwise
// be published with a reused sequence, or not at all.
func newRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.Dimension == 0 {
		cfg.Dimension = DefaultConfig().Dimension
	}
	if cfg.Dimension < 0 {
		return nil, fmt.Errorf("netcoord: registry dimension %d, want > 0", cfg.Dimension)
	}
	if cfg.TTL < 0 {
		return nil, fmt.Errorf("netcoord: registry TTL %v, want >= 0", cfg.TTL)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultRegistryShards
	}
	// Round up to a power of two so shard selection is a mask.
	if shards&(shards-1) != 0 {
		shards = 1 << bits.Len(uint(shards))
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	r := &Registry{
		dim:    cfg.Dimension,
		ttl:    cfg.TTL,
		clock:  clock,
		mask:   uint32(shards - 1),
		shards: make([]*registryShard, shards),
		closed: make(chan struct{}),
	}
	if cfg.ChangeStreamBuffer > 0 {
		r.feed.Store(changefeed.New(cfg.ChangeStreamBuffer, 0))
	}
	r.queryWorkers = resolveQueryWorkers(cfg.QueryParallelism, shards)
	if r.queryWorkers > 1 {
		// Room for a few concurrent fan-outs; dispatch never blocks on
		// a full channel (it runs the task inline instead).
		r.qtasks = make(chan queryTask, 4*shards)
	}
	r.qctxPool.New = func() any { return newQueryCtx(r) }
	for i := range r.shards {
		tree, err := index.New(cfg.Dimension)
		if err != nil {
			return nil, fmt.Errorf("netcoord: registry: %w", err)
		}
		r.shards[i] = &registryShard{
			entries: make(map[string]RegistryEntry),
			tree:    tree,
		}
	}
	if cfg.TTL > 0 {
		interval := cfg.JanitorInterval
		if interval <= 0 {
			interval = cfg.TTL / 2
		}
		if interval <= 0 {
			interval = time.Millisecond
		}
		r.janitorInterval = interval
	}
	return r, nil
}

// startJanitor launches the staleness janitor when a TTL is set. It is
// called exactly once, by the constructor that owns the registry.
func (r *Registry) startJanitor() {
	if r.janitorInterval <= 0 {
		return
	}
	r.wg.Add(1)
	go r.janitor(r.janitorInterval)
}

// Close stops the janitor and every Feed goroutine, and closes every
// change-stream subscription (their channels drain, then close). The
// registry remains queryable — and mutable, with mutations still
// sequenced — after Close; only background work and subscriber
// delivery stop.
func (r *Registry) Close() {
	r.closeOnce.Do(func() {
		r.lifeMu.Lock()
		close(r.closed)
		r.lifeMu.Unlock()
	})
	r.wg.Wait()
	if feed := r.getFeed(); feed != nil {
		feed.Close()
	}
}

// janitor periodically evicts stale entries until Close.
func (r *Registry) janitor(interval time.Duration) {
	defer r.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-ticker.C:
			r.EvictStale()
		}
	}
}

// shardFor maps an id to its stripe.
func (r *Registry) shardFor(id string) *registryShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return r.shards[h.Sum32()&r.mask]
}

// Upsert inserts or refreshes a node. Error is the node's Vivaldi error
// weight (pass 0 if your protocol does not carry it). The update
// timestamp is taken from the registry clock.
//
//nc:hotpath
func (r *Registry) Upsert(id string, c Coordinate, errWeight float64) error {
	return r.upsertEntry(RegistryEntry{ID: id, Coord: c, Error: errWeight})
}

// UpsertBatch applies many upserts, locking each shard once per batch
// rather than once per entry. Entries with a zero UpdatedAt are stamped
// with the registry clock. The whole batch is validated before anything
// is applied: on error, the registry is unchanged.
//
//nc:hotpath
func (r *Registry) UpsertBatch(entries []RegistryEntry) error {
	now := r.clock()
	// Validate everything first so a bad entry cannot leave the batch
	// half-applied, then group per shard so each stripe is locked once.
	groups := make(map[*registryShard][]RegistryEntry, len(r.shards)) //nc:allow(hotpath) one map per batch, amortized across the batch's entries
	for _, e := range entries {
		if e.ID == "" {
			return errEmptyUpsertID
		}
		if r.validateID != nil {
			if err := r.validateID(e.ID); err != nil {
				//nc:allow(hotpath) validation-failure return: cold by definition
				return fmt.Errorf("netcoord: registry upsert: %w", err)
			}
		}
		if err := e.Coord.Validate(r.dim); err != nil {
			//nc:allow(hotpath) validation-failure return: cold by definition
			return fmt.Errorf("netcoord: registry upsert %q: %w", e.ID, err)
		}
		if e.UpdatedAt.IsZero() {
			e.UpdatedAt = now
		}
		s := r.shardFor(e.ID)
		groups[s] = append(groups[s], e)
	}
	for s, group := range groups {
		s.mu.Lock()
		if len(s.entries) == 0 {
			// Empty shard: bulk-build the index balanced in one pass
			// instead of n incremental inserts with rebuild cascades.
			// This is the registry warm-up path (snapshot restore,
			// first Feed burst) — O(n log n) instead of O(n log^2 n)
			// amortized.
			pts := make([]index.Entry, len(group)) //nc:allow(hotpath) warm-up path: one slice per bulk build of an empty shard
			for i, e := range group {
				pts[i] = index.Entry{ID: e.ID, Coord: e.Coord}
			}
			tree, err := index.Build(r.dim, pts)
			if err != nil {
				// Unreachable: coordinates were validated above, and
				// validation is Build's only failure.
				s.mu.Unlock()
				//nc:allow(hotpath) unreachable wrap: inputs were pre-validated
				return fmt.Errorf("netcoord: registry upsert: %w", err)
			}
			s.tree = tree
			for _, e := range group {
				if seq := r.publishUpsert(e); seq != 0 {
					e.Seq = seq
				}
				if _, ok := s.entries[e.ID]; !ok {
					r.live.Add(1)
				}
				s.entries[e.ID] = e // later duplicates win, as Build resolves them
				r.upserts.Add(1)
			}
			s.mu.Unlock()
			continue
		}
		for _, e := range group {
			// Same pure-refresh shortcut as upsertEntry.
			old, existed := s.entries[e.ID]
			if existed && old.Coord.Equal(e.Coord) {
				if seq := r.publishUpsert(e); seq != 0 {
					e.Seq = seq
				}
				s.entries[e.ID] = e
				r.upserts.Add(1)
				continue
			}
			if err := s.tree.Insert(e.ID, e.Coord); err != nil {
				// Unreachable: coordinates were validated above, and
				// validation is the tree's only insert failure.
				s.mu.Unlock()
				//nc:allow(hotpath) unreachable wrap: inputs were pre-validated
				return fmt.Errorf("netcoord: registry upsert: %w", err)
			}
			if seq := r.publishUpsert(e); seq != 0 {
				e.Seq = seq
			}
			s.entries[e.ID] = e
			if !existed {
				r.live.Add(1)
			}
			r.upserts.Add(1)
		}
		s.mu.Unlock()
	}
	return nil
}

//nc:hotpath
func (r *Registry) upsertEntry(e RegistryEntry) error {
	if e.ID == "" {
		return errEmptyUpsertID
	}
	if r.validateID != nil {
		if err := r.validateID(e.ID); err != nil {
			//nc:allow(hotpath) validation-failure return: cold by definition
			return fmt.Errorf("netcoord: registry upsert: %w", err)
		}
	}
	if e.UpdatedAt.IsZero() {
		e.UpdatedAt = r.clock()
	}
	s := r.shardFor(e.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	// TTL heartbeats re-upsert unchanged coordinates constantly (stable
	// app-level coordinates are the norm); a pure refresh must not
	// churn the index with tombstone+reinsert cycles and the rebuilds
	// they trigger.
	old, existed := s.entries[e.ID]
	if existed && old.Coord.Equal(e.Coord) {
		if seq := r.publishUpsert(e); seq != 0 {
			e.Seq = seq
		}
		s.entries[e.ID] = e
		r.upserts.Add(1)
		return nil
	}
	if err := s.tree.Insert(e.ID, e.Coord); err != nil {
		//nc:allow(hotpath) insert-failure return: cold by definition
		return fmt.Errorf("netcoord: registry upsert: %w", err)
	}
	if seq := r.publishUpsert(e); seq != 0 {
		e.Seq = seq
	}
	s.entries[e.ID] = e
	if !existed {
		r.live.Add(1)
	}
	r.upserts.Add(1)
	return nil
}

// Remove deletes a node, reporting whether it was present.
func (r *Registry) Remove(id string) bool {
	s := r.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[id]; !ok {
		return false
	}
	delete(s.entries, id)
	s.tree.Remove(id)
	r.live.Add(-1)
	r.removes.Add(1)
	if feed := r.getFeed(); feed != nil {
		feed.PublishRemove(id)
	}
	return true
}

// Get returns the stored entry for id.
func (r *Registry) Get(id string) (RegistryEntry, bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[id]
	return e, ok
}

// Len reports the number of live entries.
func (r *Registry) Len() int {
	n := 0
	for _, s := range r.shards {
		s.mu.RLock()
		n += len(s.entries)
		s.mu.RUnlock()
	}
	return n
}

// Estimate predicts the RTT in milliseconds between two registered
// nodes.
func (r *Registry) Estimate(aID, bID string) (float64, error) {
	a, ok := r.Get(aID)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownID, aID)
	}
	b, ok := r.Get(bID)
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrUnknownID, bID)
	}
	d, err := a.Coord.DistanceTo(b.Coord)
	if err != nil {
		return 0, fmt.Errorf("netcoord: registry estimate: %w", err)
	}
	return d, nil
}

// EvictStale removes every entry whose last upsert is older than the
// configured TTL, returning how many were evicted. The background
// janitor calls this; it is exported for deployments that prefer to
// drive eviction themselves.
func (r *Registry) EvictStale() int {
	if r.ttl <= 0 {
		return 0
	}
	cutoff := r.clock().Add(-r.ttl)
	evicted := 0
	feed := r.getFeed()
	for _, s := range r.shards {
		var evictedIDs []string
		s.mu.Lock()
		for id, e := range s.entries {
			if e.UpdatedAt.Before(cutoff) {
				delete(s.entries, id)
				s.tree.Remove(id)
				r.live.Add(-1)
				evicted++
				if feed != nil {
					evictedIDs = append(evictedIDs, id)
				}
			}
		}
		if len(evictedIDs) > 0 {
			// Published under the shard lock like every other mutation;
			// the feed chunks oversized sweeps into multiple events.
			feed.PublishEvict(evictedIDs)
		}
		s.mu.Unlock()
	}
	if evicted > 0 {
		r.evictions.Add(uint64(evicted))
	}
	return evicted
}

// Snapshot returns every live entry, sorted by id — for persistence,
// debugging, or bulk hand-off to another registry via UpsertBatch.
func (r *Registry) Snapshot() []RegistryEntry {
	var out []RegistryEntry
	for _, s := range r.shards {
		s.mu.RLock()
		for _, e := range s.entries {
			out = append(out, e)
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots operational counters.
func (r *Registry) Stats() RegistryStats {
	st := RegistryStats{
		Shards:     len(r.shards),
		Upserts:    r.upserts.Load(),
		Removes:    r.removes.Load(),
		Queries:    r.queries.Load(),
		Evictions:  r.evictions.Load(),
		FeedErrors: r.feedErrors.Load(),
	}
	for _, s := range r.shards {
		s.mu.RLock()
		st.Entries += len(s.entries)
		ts := s.tree.Stats()
		st.IndexTombstones += ts.Tombstones
		st.IndexRebuilds += ts.Rebuilds
		s.mu.RUnlock()
	}
	return st
}

// Feed consumes a live node's application-level update channel and keeps
// the registry entry for id current — wire a Node's NodeConfig.Updates
// channel here and the registry tracks the cluster automatically. The
// feed stops when the channel closes, when the returned stop function is
// called, or when the registry is closed. Feed on a closed registry is a
// no-op and returns a stop function that does nothing.
func (r *Registry) Feed(id string, updates <-chan NodeUpdate) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	stop = func() { once.Do(func() { close(done) }) }
	r.lifeMu.Lock()
	select {
	case <-r.closed:
		r.lifeMu.Unlock()
		return stop
	default:
	}
	r.wg.Add(1)
	r.lifeMu.Unlock()
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.closed:
				return
			case <-done:
				return
			case u, ok := <-updates:
				if !ok {
					return
				}
				if err := r.Upsert(id, u.Coord, u.Error); err != nil {
					// A node emitting invalid coordinates is a bug, but
					// the registry must not wedge the feed; count it.
					r.feedErrors.Add(1)
				}
			}
		}
	}()
	return stop
}
