// Live cluster: real UDP nodes forming a coordinate space on localhost.
//
// Starts N full nodes — actual sockets, the ping/pong wire protocol,
// gossip neighbor discovery — seeded with only the first node's address,
// then watches the system converge. This is the deployable stack the
// paper ran on 270 PlanetLab machines, shrunk onto one host.
//
// Loopback latencies sit below measurement precision, the regime of the
// paper's Section IV-B cluster experiment, so the nodes run with
// confidence building (a 3 ms error margin) enabled.
//
// Run: go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"netcoord"
)

const clusterSize = 5

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := netcoord.DefaultConfig()
	cfg.ErrorMargin = 3 // confidence building: Section IV-B

	var nodes []*netcoord.Node
	defer func() {
		for _, n := range nodes {
			if err := n.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "stop: %v\n", err)
			}
		}
	}()

	var seeds []string
	for i := 0; i < clusterSize; i++ {
		nodeCfg := cfg
		nodeCfg.Seed = uint64(i + 1)
		n, err := netcoord.StartNode(netcoord.NodeConfig{
			ListenAddr:     "127.0.0.1:0",
			Seeds:          seeds,
			Client:         nodeCfg,
			SampleInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
		if i == 0 {
			seeds = []string{n.Addr()} // everyone else joins via node 0
		}
		fmt.Printf("started node %d on %s\n", i, n.Addr())
	}

	// Push convergence along synchronously, then report.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for round := 0; round < 60; round++ {
		for i, n := range nodes {
			if i == 0 {
				continue // node 0 has no seeds until gossip reaches it
			}
			if err := n.SampleNow(ctx); err != nil {
				// Transient timeouts are expected under load; the
				// background sampler keeps going regardless.
				continue
			}
		}
	}
	time.Sleep(500 * time.Millisecond) // let background samplers breathe

	fmt.Printf("\n%-6s %-28s %-12s %-10s %-8s\n", "node", "coordinate", "confidence", "neighbors", "samples")
	for i, n := range nodes {
		fmt.Printf("%-6d %-28v %-12.2f %-10d %-8d\n",
			i, n.Coordinate(), n.Confidence(), len(n.Neighbors()), n.Samples())
	}

	// Pairwise latency estimates: on loopback every pair should predict
	// a few milliseconds at most.
	fmt.Println("\npairwise RTT estimates (ms):")
	for i := range nodes {
		for j := range nodes {
			if i >= j {
				continue
			}
			est, err := nodes[i].EstimateRTT(nodes[j].Coordinate())
			if err != nil {
				return err
			}
			fmt.Printf("  node %d <-> node %d: %6.2f\n", i, j, est)
		}
	}
	fmt.Println("\ngossip spread the membership from one seed; confidence building handled sub-precision RTTs.")
	return nil
}
