// Overlay operator placement: the paper's motivating application.
//
// The authors built network coordinates for stream-based overlay
// networks, where a coordinate change can "initiate a cascade of events,
// culminating in one or more heavyweight process migrations". This
// example builds a 48-node coordinate space over the synthetic WAN, then
// uses it for two placement tasks:
//
//  1. k-nearest-neighbor selection: for a client node, find the k
//     overlay nodes with the smallest estimated RTT — compared against
//     the ground-truth ranking to compute precision.
//  2. operator placement: choose the node minimizing the estimated
//     max-latency to a producer/consumer pair (a stream join operator),
//     and show how rarely that decision changes when driven by
//     application-level coordinates versus system-level ones.
//
// Run: go run ./examples/overlay
package main

import (
	"fmt"
	"os"
	"sort"

	"netcoord/internal/coord"
	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

const (
	nodes   = 48
	seconds = 1800
	k       = 5
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "overlay: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	net, err := netsim.New(netsim.DefaultWideArea(nodes, 7))
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
		IntervalTicks: 1, DurationTicks: seconds, Seed: 8,
	})
	if err != nil {
		return err
	}
	vcfg := vivaldi.DefaultConfig()
	vcfg.Seed = 9
	runner, err := sim.NewRunner(sim.Config{
		Nodes:   nodes,
		Vivaldi: vcfg,
		Filter: func() filter.Filter {
			f, err := filter.NewMP(filter.DefaultMPConfig())
			if err != nil {
				return filter.NewNone()
			}
			return f
		},
		Policy: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		},
	})
	if err != nil {
		return err
	}
	// Track placement churn while the space converges: re-decide the
	// operator placement every minute using both coordinate streams.
	producer, consumer := 0, 3 // us-west and china
	var sysChurn, appChurn int
	lastSys, lastApp := -1, -1
	decide := func(coords []coord.Coordinate) (int, error) {
		best, bestCost := -1, 0.0
		for i, c := range coords {
			if i == producer || i == consumer {
				continue
			}
			dp, err := c.DistanceTo(coords[producer])
			if err != nil {
				return 0, err
			}
			dc, err := c.DistanceTo(coords[consumer])
			if err != nil {
				return 0, err
			}
			cost := dp
			if dc > dp {
				cost = dc
			}
			if best == -1 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		return best, nil
	}
	nextDecision := uint64(60)
	for {
		s, ok := gen.Next()
		if !ok {
			break
		}
		if s.Tick >= nextDecision {
			sysCoords, appCoords, err := snapshot(runner)
			if err != nil {
				return err
			}
			sysPick, err := decide(sysCoords)
			if err != nil {
				return err
			}
			appPick, err := decide(appCoords)
			if err != nil {
				return err
			}
			if lastSys != -1 && sysPick != lastSys {
				sysChurn++
			}
			if lastApp != -1 && appPick != lastApp {
				appChurn++
			}
			lastSys, lastApp = sysPick, appPick
			nextDecision += 60
		}
		if err := runner.Step(s); err != nil {
			return err
		}
	}

	// Final k-NN precision for a client in europe (node 2), judged
	// against ground-truth base RTTs.
	sysCoords, appCoords, err := snapshot(runner)
	if err != nil {
		return err
	}
	const client = 2
	precision, err := knnPrecision(net, appCoords, client, k)
	if err != nil {
		return err
	}
	fmt.Printf("coordinate space: %d nodes over 4 regions, %d s of observations\n\n", nodes, seconds)
	fmt.Printf("k-NN (k=%d) precision for node %d (%s), app-level coordinates: %.0f%%\n",
		k, client, net.Region(client), precision*100)

	sysPrecision, err := knnPrecision(net, sysCoords, client, k)
	if err != nil {
		return err
	}
	fmt.Printf("k-NN (k=%d) precision with system-level coordinates:          %.0f%%\n\n", k, sysPrecision*100)

	fmt.Printf("operator placement churn over %d decisions (producer %s, consumer %s):\n",
		(seconds/60)-1, net.Region(producer), net.Region(consumer))
	fmt.Printf("  driven by system-level coordinates:      %d migrations\n", sysChurn)
	fmt.Printf("  driven by application-level coordinates: %d migrations\n", appChurn)
	fmt.Println("\nevery migration is 'heavyweight'; the app-level stream avoids almost all of them.")
	return nil
}

// snapshot reads both coordinate streams for every node.
func snapshot(runner *sim.Runner) (sys, app []coord.Coordinate, err error) {
	sys = make([]coord.Coordinate, nodes)
	app = make([]coord.Coordinate, nodes)
	for i := 0; i < nodes; i++ {
		if sys[i], err = runner.Coordinate(i); err != nil {
			return nil, nil, err
		}
		if app[i], err = runner.AppCoordinate(i); err != nil {
			return nil, nil, err
		}
	}
	return sys, app, nil
}

// knnPrecision compares the coordinate-ranked k nearest overlay nodes
// with the ground-truth base-RTT ranking.
func knnPrecision(net *netsim.Network, coords []coord.Coordinate, client, k int) (float64, error) {
	type ranked struct {
		node int
		cost float64
	}
	truth := make([]ranked, 0, nodes-1)
	est := make([]ranked, 0, nodes-1)
	for i := 0; i < nodes; i++ {
		if i == client {
			continue
		}
		truth = append(truth, ranked{node: i, cost: net.BaseRTT(client, i, seconds)})
		d, err := coords[client].DistanceTo(coords[i])
		if err != nil {
			return 0, err
		}
		est = append(est, ranked{node: i, cost: d})
	}
	sort.Slice(truth, func(a, b int) bool { return truth[a].cost < truth[b].cost })
	sort.Slice(est, func(a, b int) bool { return est[a].cost < est[b].cost })
	trueSet := map[int]bool{}
	for _, r := range truth[:k] {
		trueSet[r.node] = true
	}
	hits := 0
	for _, r := range est[:k] {
		if trueSet[r.node] {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}
