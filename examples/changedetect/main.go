// Change detection: application-level coordinates across a BGP route
// change.
//
// The paper's promise is that the techniques keep Vivaldi's ability to
// adapt: "if the latency of a link changes due to a BGP route change,
// coordinates adjust and restabilize quickly." This example doubles the
// us-west <-> europe long-haul latency mid-run and traces how
//
//   - the MP filter passes the genuine shift through within four
//     observations (it only discards outliers, not trends), and
//   - the ENERGY two-window detector fires a burst of application-level
//     updates around the event and then goes quiet again.
//
// Run: go run ./examples/changedetect
package main

import (
	"fmt"
	"os"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

const (
	nodes    = 32
	seconds  = 2400
	changeAt = 1200
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "changedetect: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := netsim.DefaultWideArea(nodes, 11)
	cfg.RouteChanges = []netsim.RouteChange{
		{AtTick: changeAt, RegionA: 0, RegionB: 2, Factor: 2}, // us-west <-> europe doubles
	}
	net, err := netsim.New(cfg)
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(net, trace.GeneratorConfig{
		IntervalTicks: 1, DurationTicks: seconds, Seed: 12,
	})
	if err != nil {
		return err
	}
	vcfg := vivaldi.DefaultConfig()
	vcfg.Seed = 13
	runner, err := sim.NewRunner(sim.Config{
		Nodes:   nodes,
		Vivaldi: vcfg,
		Filter: func() filter.Filter {
			f, err := filter.NewMP(filter.DefaultMPConfig())
			if err != nil {
				return filter.NewNone()
			}
			return f
		},
		Policy: func(dim int) (heuristic.Policy, error) {
			return heuristic.NewEnergy(dim, heuristic.DefaultWindow, heuristic.DefaultEnergyTau)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("route change at t=%ds: us-west <-> europe latency doubles\n\n", changeAt)
	if err := runner.Run(gen); err != nil {
		return err
	}

	// Per-two-minute windows: app update fraction and estimate accuracy
	// on a us-west -> europe pair (nodes 0 and 2).
	app := runner.App()
	fmt.Printf("%-12s %-18s %-20s\n", "window", "app updates/s (%)", "note")
	const width = 120
	for start := uint64(0); start < seconds; start += width {
		end := start + width - 1
		fracs := app.UpdateFractionSeries(start, end)
		var mean float64
		for _, f := range fracs {
			mean += f
		}
		if len(fracs) > 0 {
			mean /= float64(len(fracs))
		}
		note := ""
		switch {
		case start < width:
			note = "bootstrap burst"
		case start <= changeAt && changeAt < start+width:
			note = "<-- route change"
		case start == changeAt+width:
			note = "re-stabilizing"
		}
		fmt.Printf("t=%4d-%4d  %-18.2f %-20s\n", start, end, mean*100, note)
	}

	// The estimate between an affected pair must track the new latency.
	c0, err := runner.Coordinate(0)
	if err != nil {
		return err
	}
	c2, err := runner.Coordinate(2)
	if err != nil {
		return err
	}
	est, err := c0.DistanceTo(c2)
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal us-west->europe estimate: %.0f ms (base before change %.0f, after %.0f)\n",
		est, net.BaseRTT(0, 2, 0), net.BaseRTT(0, 2, seconds))
	fmt.Println("the detector fires around the event and goes quiet — adaptation without jitter.")
	return nil
}
