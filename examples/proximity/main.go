// Proximity service: a live cluster feeding a coordinate Registry that
// answers "nearest k replicas" queries.
//
// Boots real UDP nodes on localhost, wires each node's application-level
// update channel into a shared Registry via Feed, converges the system,
// and then answers the query every coordinate deployment exists for:
// which replicas should this client talk to?
//
// This is the consumer side of the paper's stability argument: because
// application-level coordinates move only on significant change, the
// registry's answers — and therefore replica selections — stay put
// instead of flapping with every Vivaldi refinement.
//
// Run: go run ./examples/proximity
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"netcoord"
)

const clusterSize = 6

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "proximity: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := netcoord.DefaultConfig()
	cfg.ErrorMargin = 3 // loopback RTTs sit below measurement precision

	// The registry tracks the cluster; a TTL would age out crashed
	// nodes in a long-running deployment.
	reg, err := netcoord.NewRegistry(netcoord.RegistryConfig{})
	if err != nil {
		return err
	}
	defer reg.Close()

	var nodes []*netcoord.Node
	defer func() {
		for _, n := range nodes {
			if err := n.Stop(); err != nil {
				fmt.Fprintf(os.Stderr, "stop: %v\n", err)
			}
		}
	}()

	var seeds []string
	for i := 0; i < clusterSize; i++ {
		nodeCfg := cfg
		nodeCfg.Seed = uint64(i + 1)
		id := fmt.Sprintf("replica-%d", i)
		// Each node's application-level updates stream straight into
		// the registry: live nodes keep it current automatically.
		updates := make(chan netcoord.NodeUpdate, 16)
		n, err := netcoord.StartNode(netcoord.NodeConfig{
			ListenAddr:     "127.0.0.1:0",
			Seeds:          seeds,
			Client:         nodeCfg,
			SampleInterval: 50 * time.Millisecond,
			Updates:        updates,
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, n)
		reg.Feed(id, updates)
		if i == 0 {
			seeds = []string{n.Addr()}
		}
		fmt.Printf("started %s on %s\n", id, n.Addr())
	}

	// Drive convergence synchronously so the example finishes quickly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for round := 0; round < 80; round++ {
		for i, n := range nodes {
			if i == 0 {
				continue // node 0 learns peers through gossip
			}
			if err := n.SampleNow(ctx); err != nil {
				continue // transient timeouts are fine
			}
		}
	}
	// Give the feeds a moment to drain the update channels.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Len() < clusterSize && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	st := reg.Stats()
	fmt.Printf("\nregistry: %d entries, %d upserts from node feeds\n", st.Entries, st.Upserts)

	// The payoff query: nearest 3 replicas to a client. The client is
	// not part of the cluster — it only knows its own coordinate (here,
	// node 0's, as if the client measured itself against the system).
	client := nodes[0].AppCoordinate()
	nearest, err := reg.Nearest(client, 3)
	if err != nil {
		return err
	}
	fmt.Println("nearest 3 replicas to the client:")
	for rank, r := range nearest {
		fmt.Printf("  %d. %-10s estimated RTT %6.2f ms\n", rank+1, r.ID, r.EstimatedRTT)
	}

	// And the same through a registered node's perspective — guarded on
	// that node's update actually having landed, since a loaded machine
	// can pass the drain deadline with stragglers missing.
	if _, ok := reg.Get("replica-1"); ok {
		peers, err := reg.NearestTo("replica-1", 3)
		if err != nil {
			return err
		}
		fmt.Println("nearest 3 peers to replica-1 (itself excluded):")
		for rank, r := range peers {
			fmt.Printf("  %d. %-10s estimated RTT %6.2f ms\n", rank+1, r.ID, r.EstimatedRTT)
		}
	}
	return nil
}
