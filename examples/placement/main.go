// Placement: latency-aware service selection with the public API only.
//
// A fleet of clients measures a synthetic three-region topology through
// the netcoord public API (no internal packages), then answers the two
// placement questions the paper's overlay work motivates:
//
//   - "which replicas are closest to me?" via netcoord.Nearest, and
//   - "where should a stream operator between two endpoints run?" via
//     netcoord.MinimaxPlacement.
//
// Run: go run ./examples/placement
package main

import (
	"fmt"
	"math"
	"os"

	"netcoord"

	"netcoord/internal/xrand"
)

// site is one host in the demo topology.
type site struct {
	name   string
	region string
	x, y   float64 // ms-plane position: distances give base RTTs
	client *netcoord.Client
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "placement: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	sites := []*site{
		{name: "sfo-1", region: "us-west", x: 0, y: 0},
		{name: "sfo-2", region: "us-west", x: 4, y: 3},
		{name: "nyc-1", region: "us-east", x: 70, y: 8},
		{name: "nyc-2", region: "us-east", x: 73, y: 4},
		{name: "ams-1", region: "europe", x: 155, y: 25},
		{name: "ams-2", region: "europe", x: 158, y: 28},
	}
	for i, s := range sites {
		cfg := netcoord.DefaultConfig()
		cfg.Seed = uint64(i + 1)
		c, err := netcoord.NewClient(cfg)
		if err != nil {
			return err
		}
		s.client = c
	}

	// Every site periodically measures every other: base RTT plus jitter
	// plus occasional half-second stalls.
	rng := xrand.NewStream(99)
	baseRTT := func(a, b *site) float64 {
		dx, dy := a.x-b.x, a.y-b.y
		return math.Max(math.Sqrt(dx*dx+dy*dy), 0.5)
	}
	measure := func(a, b *site) float64 {
		rtt := baseRTT(a, b) * (1 + math.Abs(rng.Normal(0, 0.05)))
		if rng.Bernoulli(0.03) {
			rtt += rng.Uniform(400, 3000)
		}
		return rtt
	}
	for round := 0; round < 400; round++ {
		for _, a := range sites {
			for _, b := range sites {
				if a == b {
					continue
				}
				if _, err := a.client.Observe(b.name, measure(a, b), b.client.Coordinate(), b.client.Error()); err != nil {
					return err
				}
			}
		}
	}

	// Question 1: nearest replicas for sfo-1, from stable app-level
	// coordinates.
	var candidates []netcoord.Candidate
	for _, s := range sites[1:] {
		candidates = append(candidates, netcoord.Candidate{ID: s.name, Coord: s.client.AppCoordinate()})
	}
	nearest, err := netcoord.Nearest(sites[0].client.AppCoordinate(), candidates, 3)
	if err != nil {
		return err
	}
	fmt.Println("three nearest replicas to sfo-1 (app-level coordinates):")
	for _, r := range nearest {
		fmt.Printf("  %-8s estimated %6.1f ms\n", r.ID, r.EstimatedRTT)
	}

	// Question 2: place a stream operator between sfo-2 and ams-1.
	producer := sites[1].client.AppCoordinate()
	consumer := sites[4].client.AppCoordinate()
	best, err := netcoord.MinimaxPlacement(
		[]netcoord.Coordinate{producer, consumer}, candidates)
	if err != nil {
		return err
	}
	fmt.Printf("\noperator between sfo-2 and ams-1 placed at %s (worst-case leg %.1f ms)\n",
		best.ID, best.EstimatedRTT)
	fmt.Println("expected: a us-east site — the geographic midpoint wins the minimax.")
	return nil
}
