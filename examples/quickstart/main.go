// Quickstart: embed RTT measurements into a coordinate space with the
// public netcoord API.
//
// Two clients measure a jittery, spike-prone 80 ms link — the kind of
// observation stream a real WAN produces — and still converge to
// coordinates whose distance predicts the true latency, because the MP
// filter strips the spikes before Vivaldi sees them. The application
// coordinate barely moves while the system coordinate keeps refining.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"math"
	"os"

	"netcoord"

	"netcoord/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfgA := netcoord.DefaultConfig()
	cfgA.Seed = 1
	alice, err := netcoord.NewClient(cfgA)
	if err != nil {
		return err
	}
	cfgB := netcoord.DefaultConfig()
	cfgB.Seed = 2
	bob, err := netcoord.NewClient(cfgB)
	if err != nil {
		return err
	}

	// A synthetic 80 ms link: 5% of pings are congestion artifacts up to
	// 50x the base latency — exactly the input that breaks raw Vivaldi.
	rng := xrand.NewStream(42)
	const trueRTT = 80.0
	measure := func() float64 {
		if rng.Bernoulli(0.05) {
			return rng.Uniform(400, 4000)
		}
		return trueRTT * (1 + math.Abs(rng.Normal(0, 0.04)))
	}

	appUpdates := 0
	for i := 0; i < 600; i++ {
		rtt := measure()
		// Each side feeds the observation along with the remote's
		// coordinate state (your protocol carries these two values).
		stA, err := alice.Observe("bob", rtt, bob.Coordinate(), bob.Error())
		if err != nil {
			return err
		}
		if stA.AppChanged {
			appUpdates++
		}
		if _, err := bob.Observe("alice", rtt, alice.Coordinate(), alice.Error()); err != nil {
			return err
		}
		if (i+1)%150 == 0 {
			est, err := alice.DistanceTo(bob.Coordinate())
			if err != nil {
				return err
			}
			fmt.Printf("after %3d observations: estimated RTT %6.1f ms (true %.0f), confidence %.2f\n",
				i+1, est, trueRTT, alice.Confidence())
		}
	}

	est, err := alice.DistanceTo(bob.Coordinate())
	if err != nil {
		return err
	}
	appEst, err := alice.AppDistanceTo(bob.AppCoordinate())
	if err != nil {
		return err
	}
	fmt.Printf("\nfinal system-level estimate:      %.1f ms\n", est)
	fmt.Printf("final application-level estimate: %.1f ms\n", appEst)
	fmt.Printf("application coordinate updates:   %d (of 600 observations)\n", appUpdates)
	fmt.Println("\nthe app coordinate moved rarely; the estimate stayed accurate — that is the paper's point.")
	return nil
}
