package netcoord

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkWatchFanout measures the mutation hot path with a realistic
// watcher population attached: every upsert is sequenced, retained in
// the ring, and offered to 64 subscriber buffers. This is the cost a
// leader pays per mutation for the entire push-based distribution
// layer — it must stay within a small multiple of the bare upsert.
func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			r, err := NewRegistry(RegistryConfig{ChangeStreamBuffer: 1 << 14})
			if err != nil {
				b.Fatal(err)
			}
			var drained sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub, err := r.SubscribeChanges(1 << 10)
				if err != nil {
					b.Fatal(err)
				}
				drained.Add(1)
				go func(s *ChangeSubscription) {
					defer drained.Done()
					for range s.C() {
					}
				}(sub)
			}
			const population = 1024
			ids := make([]string, population)
			coords := make([]Coordinate, population)
			for i := range ids {
				ids[i] = fmt.Sprintf("node-%04d", i)
				coords[i] = c3(float64(i%97), float64(i%89), float64(i%13))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Upsert(ids[i%population], coords[(i+1)%population], 0.1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			r.Close() // closes subscriptions; drain goroutines exit
			drained.Wait()
		})
	}
}
