package netcoord

import (
	"fmt"
	"sync"
	"testing"

	"netcoord/internal/changefeed"
)

// BenchmarkWatchFanout measures the mutation hot path with a realistic
// watcher population attached: every upsert is sequenced, retained in
// the ring, and offered to 64 subscriber buffers. This is the cost a
// leader pays per mutation for the entire push-based distribution
// layer — it must stay within a small multiple of the bare upsert.
func BenchmarkWatchFanout(b *testing.B) {
	for _, subs := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			r, err := NewRegistry(RegistryConfig{ChangeStreamBuffer: 1 << 14})
			if err != nil {
				b.Fatal(err)
			}
			var drained sync.WaitGroup
			for i := 0; i < subs; i++ {
				sub, err := r.SubscribeChanges(1 << 10)
				if err != nil {
					b.Fatal(err)
				}
				drained.Add(1)
				go func(s *ChangeSubscription) {
					defer drained.Done()
					for range s.C() {
					}
				}(sub)
			}
			const population = 1024
			ids := make([]string, population)
			coords := make([]Coordinate, population)
			for i := range ids {
				ids[i] = fmt.Sprintf("node-%04d", i)
				coords[i] = c3(float64(i%97), float64(i%89), float64(i%13))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Upsert(ids[i%population], coords[(i+1)%population], 0.1); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			r.Close() // closes subscriptions; drain goroutines exit
			drained.Wait()
		})
	}
}

// BenchmarkRelayForward measures the relay-forward hot path: an event
// whose frame bytes are already cached (as a frame-negotiated follower
// stores them at ingest, and as publish-time encoding stores them at
// the origin) is appended to an outgoing batch. This must be a pure
// copy of the cached bytes — zero allocations, zero marshal calls — or
// every tier of a fan-out tree re-pays the encode the origin already
// paid once. CI gates it at 0 allocs/op.
func BenchmarkRelayForward(b *testing.B) {
	evs := make([]ChangeEvent, 256)
	for i := range evs {
		ev := ChangeEvent{Seq: uint64(i + 1), Op: ChangeUpsert, PubNs: 1712345678901234567, Entry: &ChangeEntry{
			ID:                fmt.Sprintf("node-%04d", i),
			Coord:             c3(float64(i%97), float64(i%89), float64(i%13)),
			Error:             0.15,
			UpdatedAtUnixNano: 1712345678901234567,
		}}
		ev.enc = &changefeed.Encoded{}
		if _, err := ev.AppendFrameTo(nil); err != nil { // first encode populates the cache
			b.Fatal(err)
		}
		evs[i] = ev
	}
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(buf) > 1<<15 {
			buf = buf[:0] // stay inside the preallocated batch buffer
		}
		var err error
		if buf, err = evs[i%len(evs)].AppendFrameTo(buf); err != nil {
			b.Fatal(err)
		}
	}
}
