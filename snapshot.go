package netcoord

import (
	"encoding/json"
	"fmt"

	"netcoord/internal/heuristic"
)

// observationFor primes a policy with a restored coordinate.
func observationFor(c Coordinate) heuristic.Observation {
	return heuristic.Observation{Sys: c}
}

// Snapshot is a serializable capture of a Client's coordinate state.
// Persisting one across restarts lets a node rejoin the coordinate space
// where it left off instead of re-converging from the origin — the same
// practice the Vivaldi deployments the paper influenced (Azureus/Pyxida,
// hashicorp/serf) adopted.
//
// Snapshots deliberately exclude per-link filter state and the
// change-detection windows: both are short (h = 4 observations, one
// window pair) and rebuild within seconds, while a stale window carried
// across downtime would mislead the detector.
type Snapshot struct {
	// Version guards the serialization format.
	Version int `json:"version"`
	// Sys is the system-level coordinate.
	Sys Coordinate `json:"sys"`
	// App is the application-level coordinate.
	App Coordinate `json:"app"`
	// Error is the Vivaldi error weight w.
	Error float64 `json:"error"`
}

// snapshotVersion is the current Snapshot format.
const snapshotVersion = 1

// Snapshot captures the client's current coordinates and error weight.
func (c *Client) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Snapshot{
		Version: snapshotVersion,
		Sys:     c.viv.Coordinate(),
		App:     c.policy.App(),
		Error:   c.viv.Error(),
	}
}

// Restore loads a snapshot into the client. Both coordinates are
// validated against the client's dimension. The policy is re-primed
// with the persisted application-level coordinate — not the system
// coordinate — so the node resumes publishing its stable pre-restart
// position and only moves on the next genuinely significant change;
// priming with Sys would make every restart an application-coordinate
// jump, exactly the churn the system/app split exists to prevent. The
// policy windows restart empty and refill from live observations.
func (c *Client) Restore(s Snapshot) error {
	if s.Version != snapshotVersion {
		return fmt.Errorf("netcoord: snapshot version %d, want %d", s.Version, snapshotVersion)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := s.Sys.Validate(c.cfg.Dimension); err != nil {
		return fmt.Errorf("netcoord: restore: %w", err)
	}
	app := s.App
	if app.Dim() == 0 {
		// Version-1 blobs written before App was authoritative (or
		// hand-built without it) carry a zero App; fall back to the old
		// behavior of priming from Sys rather than rejecting a snapshot
		// that used to restore fine.
		app = s.Sys
	}
	if err := app.Validate(c.cfg.Dimension); err != nil {
		return fmt.Errorf("netcoord: restore: %w", err)
	}
	if err := c.viv.SetCoordinate(s.Sys); err != nil {
		return fmt.Errorf("netcoord: restore: %w", err)
	}
	c.viv.SetError(s.Error)
	c.policy.Reset()
	if _, _, err := c.policy.Observe(observationFor(app)); err != nil {
		return fmt.Errorf("netcoord: restore: %w", err)
	}
	// Per-link filters restart; their four-observation histories are
	// stale after any downtime.
	c.bank.Reset()
	return nil
}

// MarshalBinaryJSON renders the snapshot as JSON bytes, the stable
// on-disk form.
func (s Snapshot) MarshalBinaryJSON() ([]byte, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("netcoord: marshal snapshot: %w", err)
	}
	return data, nil
}

// ParseSnapshot parses JSON bytes produced by MarshalBinaryJSON.
func ParseSnapshot(data []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return Snapshot{}, fmt.Errorf("netcoord: parse snapshot: %w", err)
	}
	return s, nil
}
