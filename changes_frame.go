package netcoord

import (
	"fmt"

	"netcoord/internal/wire"
)

// This file bridges change events to the binary change-frame format in
// internal/wire. The frame form is what followers negotiate on
// /changes (and /snapshot) instead of JSON: one compact self-delimiting
// record per event, encoded once at the stream's origin and forwarded
// verbatim by every relay tier — a follower decodes a frame to apply
// it, then republishes the received bytes untouched, so an N-tier
// chain pays one encode total instead of one per hop.
//
// Frames carry no coalesce label: the binary path serves history reads
// (dense by construction), never live coalesced deliveries.

// AppendFrameTo appends the event's binary change frame to dst and
// returns the extended slice, serving cached bytes when the event
// carries the shared encode cache — the fan-out and relay-forward hot
// path is then a single memcpy.
//
//nc:hotpath
func (e ChangeEvent) AppendFrameTo(dst []byte) ([]byte, error) {
	if e.enc != nil {
		if b := e.enc.Frame(); b != nil {
			return append(dst, b...), nil
		}
	}
	return e.appendFrameCold(dst) //nc:allow(hotpath) first serialization of an event: built and cached once, after which every call takes the cached-copy path above
}

// appendFrameCold builds the frame from scratch and caches it when the
// event carries an encode cache.
func (e ChangeEvent) appendFrameCold(dst []byte) ([]byte, error) {
	fr, err := frameFromChangeEvent(e)
	if err != nil {
		return nil, err
	}
	start := len(dst)
	if dst, err = wire.AppendFrame(dst, &fr); err != nil {
		return nil, err
	}
	if e.enc != nil {
		// The cache needs its own backing: dst belongs to the caller and
		// may be grown over, truncated, or reused.
		e.enc.StoreFrame(append([]byte(nil), dst[start:]...))
	}
	return dst, nil
}

// frameFromChangeEvent maps the wire-JSON event shape onto a frame.
func frameFromChangeEvent(e ChangeEvent) (wire.Frame, error) {
	fr := wire.Frame{Seq: e.Seq, Epoch: e.Epoch, PubNs: e.PubNs}
	switch e.Op {
	case ChangeUpsert:
		if e.Entry == nil {
			return fr, fmt.Errorf("netcoord: upsert event %d has no entry", e.Seq)
		}
		fr.Op = wire.OpUpsert
		fr.ID = e.Entry.ID
		fr.Coord = e.Entry.Coord
		fr.Error = e.Entry.Error
		fr.UpdatedAtNs = e.Entry.UpdatedAtUnixNano
	case ChangeRemove:
		fr.Op = wire.OpRemove
		fr.ID = e.ID
	case ChangeEvict:
		fr.Op = wire.OpEvict
		fr.IDs = e.IDs
	default:
		return fr, fmt.Errorf("netcoord: op %q has no frame encoding", e.Op)
	}
	return fr, nil
}

// changeEventFromFrame maps a decoded frame back to the event shape.
// The caller owns attaching the encode cache (with the received bytes)
// before relaying.
func changeEventFromFrame(fr *wire.Frame) (ChangeEvent, error) {
	out := ChangeEvent{Seq: fr.Seq, Epoch: fr.Epoch, PubNs: fr.PubNs}
	switch fr.Op {
	case wire.OpUpsert:
		out.Op = ChangeUpsert
		out.Entry = &ChangeEntry{
			ID:                fr.ID,
			Coord:             fr.Coord,
			Error:             fr.Error,
			UpdatedAtUnixNano: fr.UpdatedAtNs,
		}
	case wire.OpRemove:
		out.Op = ChangeRemove
		out.ID = fr.ID
	case wire.OpEvict:
		out.Op = ChangeEvict
		out.IDs = fr.IDs
	default:
		return out, fmt.Errorf("netcoord: unknown frame op %d (seq %d)", fr.Op, fr.Seq)
	}
	return out, nil
}
