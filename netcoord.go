// Package netcoord is a stable, accurate network coordinate library: an
// implementation of Ledlie & Seltzer's "Stable and Accurate Network
// Coordinates" (Harvard TR-17-05 / ICDCS 2006) — Vivaldi hardened for
// live deployment.
//
// Plain Vivaldi embeds hosts into a low-dimensional Euclidean space whose
// distances predict round-trip latency, but it assumes each link has one
// latency. Real links produce observation streams spanning orders of
// magnitude, which destabilize the embedding. This library adds the
// paper's two fixes:
//
//  1. a per-link Moving Percentile filter (keep the last h=4
//     observations, use the p=25th percentile) that strips the heavy
//     tail while tracking genuine latency shifts, and
//  2. a system/application coordinate split: the system coordinate
//     evolves with every sample, while the application-level coordinate
//     updates only when two-window change detection (energy distance or
//     relative centroid displacement) declares a significant change.
//
// # Quick start
//
//	client, err := netcoord.NewClient(netcoord.DefaultConfig())
//	if err != nil { ... }
//	// For every RTT you measure against a peer:
//	state, err := client.Observe("peer-7", rttMillis, peerCoord, peerError)
//	// Estimate latency to any coordinate you have seen:
//	ms, err := client.DistanceTo(otherCoord)
//	// Use state.App for placement decisions; it moves rarely.
//
// Client is a passive state machine fed by your own measurements (use it
// inside any gossip or RPC system, as hashicorp/serf does with its
// coordinate package). StartNode runs the full live stack — UDP pings,
// gossip neighbor discovery, background sampling — when you want a
// self-contained deployment.
//
// # Consuming coordinates at scale
//
// Stable coordinates exist so that consumers — server selection,
// operator placement, proximity routing — can act on them. Registry is
// that consumer layer: a sharded, concurrency-safe store of node
// coordinates backed by a per-shard spatial index, answering exact
// k-nearest-neighbor (Nearest, NearestTo), latency-budget (Within), and
// pairwise (Estimate) queries without scanning the node set. Feed wires
// a live Node's update channel straight into a Registry, and a TTL ages
// out nodes that stop refreshing. cmd/ncserve exposes a Registry over
// HTTP JSON as a deployable proximity service.
//
// OpenPersistentRegistry makes the registry durable: mutations are
// appended to a write-ahead log and compacted into snapshots, so a
// restarted service comes back warm with every coordinate and update
// time intact instead of re-learning the space from scratch.
//
// For one-shot selections over a slice you already hold, Nearest and
// MinimaxPlacement remain the lightweight entry points.
package netcoord

import (
	"fmt"
	"math"
	"sync"

	"netcoord/internal/coord"
	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/vivaldi"
)

// Coordinate is a position in the latency space; distances between
// coordinates estimate round-trip times in milliseconds.
type Coordinate = coord.Coordinate

// Origin returns the zero coordinate of the given dimension.
func Origin(dim int) Coordinate { return coord.Origin(dim) }

// PolicyKind selects the application-update heuristic.
type PolicyKind int

// The application-update policies from the paper's Section V, plus the
// raw pass-through.
const (
	// PolicyEnergy is the paper's deployed configuration: two-window
	// change detection with the energy statistic. The default.
	PolicyEnergy PolicyKind = iota + 1
	// PolicyRelative uses the centroid shift relative to the nearest
	// neighbor.
	PolicyRelative
	// PolicySystem updates on large single-step system movement.
	PolicySystem
	// PolicyApplication updates when the app coordinate drifts from the
	// system coordinate.
	PolicyApplication
	// PolicyApplicationCentroid is PolicyApplication publishing a recent
	// centroid.
	PolicyApplicationCentroid
	// PolicyDirect disables suppression: the application coordinate
	// follows every system update.
	PolicyDirect
)

// Config assembles a Client.
type Config struct {
	// Dimension of the coordinate space; the paper evaluates 3.
	Dimension int
	// CC and CE are the Vivaldi tuning constants (paper: 0.25 each).
	CC float64
	CE float64
	// ErrorMargin enables confidence building (Section IV-B) when > 0:
	// measured and estimated latencies within the margin are treated as
	// equal. Useful on low-latency clusters; keep 0 for the wide area.
	ErrorMargin float64
	// UseHeight enables the Dabek height model (off in the paper).
	UseHeight bool
	// HeightMin floors the height component when UseHeight is set.
	HeightMin float64

	// DisableFilter bypasses the MP filter (the paper's "No Filter"
	// baseline). Strongly discouraged outside experiments.
	DisableFilter bool
	// FilterHistory and FilterPercentile tune the MP filter; zero values
	// mean the paper's h=4, p=25.
	FilterHistory    int
	FilterPercentile float64
	// FilterWarmup is the number of observations a link needs before the
	// filter reports (Section VI robustness fix); 0 means 2.
	FilterWarmup int

	// Policy selects the application-update heuristic; zero value means
	// PolicyEnergy.
	Policy PolicyKind
	// WindowSize is the change-detection window (0 = paper's 32).
	WindowSize int
	// Threshold is the policy threshold: tau for energy/system/
	// application variants, epsilon for relative. 0 means the paper's
	// value for the chosen policy (8 for energy, 0.3 for relative, 16
	// for the windowless heuristics).
	Threshold float64

	// MaxLinks bounds per-link filter state; 0 means unbounded.
	MaxLinks int
	// Seed drives the deterministic randomness (coordinate bootstrap).
	Seed uint64
}

// DefaultConfig returns the paper's recommended deployment parameters:
// 3 dimensions, cc = ce = 0.25, MP(4, 25) filtering with a two-sample
// warm-up, and the ENERGY policy with window 32 and tau 8.
func DefaultConfig() Config {
	return Config{
		Dimension:        coord.DefaultDimension,
		CC:               vivaldi.DefaultCC,
		CE:               vivaldi.DefaultCE,
		FilterHistory:    filter.DefaultHistory,
		FilterPercentile: filter.DefaultPercentile,
		FilterWarmup:     filter.DefaultUpdateAfter,
		Policy:           PolicyEnergy,
		WindowSize:       heuristic.DefaultWindow,
		Threshold:        heuristic.DefaultEnergyTau,
	}
}

// State is a snapshot of the client's coordinates after an observation.
type State struct {
	// Sys is the system-level coordinate: continuously evolving, for
	// subsystems that want every refinement.
	Sys Coordinate
	// App is the application-level coordinate: stable, updated only on
	// significant change.
	App Coordinate
	// AppChanged reports whether App changed with this observation.
	AppChanged bool
	// Error is the node's Vivaldi error weight w in (0, 1]; confidence
	// is 1 - Error.
	Error float64
}

// Client is a thread-safe network coordinate endpoint. Feed it RTT
// observations of remote nodes (with the remote's coordinate and error
// weight, which Vivaldi protocols exchange on every message) and read
// back coordinates and latency estimates.
type Client struct {
	mu      sync.Mutex
	cfg     Config
	viv     *vivaldi.Node
	bank    *filter.Bank[string]
	policy  heuristic.Policy
	nnID    string
	nnDist  float64
	nnCoord Coordinate
	hasNN   bool
	peers   map[string]peerState
}

// NewClient builds a Client.
func NewClient(cfg Config) (*Client, error) {
	resolved, vcfg, err := resolve(cfg)
	if err != nil {
		return nil, err
	}
	viv, err := vivaldi.New(vcfg)
	if err != nil {
		return nil, fmt.Errorf("netcoord: %w", err)
	}
	policy, err := buildPolicy(resolved)
	if err != nil {
		return nil, fmt.Errorf("netcoord: %w", err)
	}
	factory, err := buildFilterFactory(resolved)
	if err != nil {
		return nil, fmt.Errorf("netcoord: %w", err)
	}
	return &Client{
		cfg:    resolved,
		viv:    viv,
		bank:   filter.NewBank[string](factory, resolved.MaxLinks),
		policy: policy,
		nnDist: inf(),
	}, nil
}

// resolve fills zero-valued fields with paper defaults and derives the
// Vivaldi configuration.
func resolve(cfg Config) (Config, vivaldi.Config, error) {
	if cfg.Dimension == 0 {
		cfg.Dimension = coord.DefaultDimension
	}
	if cfg.CC == 0 {
		cfg.CC = vivaldi.DefaultCC
	}
	if cfg.CE == 0 {
		cfg.CE = vivaldi.DefaultCE
	}
	if cfg.FilterHistory == 0 {
		cfg.FilterHistory = filter.DefaultHistory
	}
	if cfg.FilterPercentile == 0 {
		cfg.FilterPercentile = filter.DefaultPercentile
	}
	if cfg.FilterWarmup == 0 {
		cfg.FilterWarmup = filter.DefaultUpdateAfter
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyEnergy
	}
	if cfg.WindowSize == 0 {
		cfg.WindowSize = heuristic.DefaultWindow
	}
	if cfg.Threshold == 0 {
		switch cfg.Policy {
		case PolicyEnergy:
			cfg.Threshold = heuristic.DefaultEnergyTau
		case PolicyRelative:
			cfg.Threshold = heuristic.DefaultRelativeEpsilon
		case PolicySystem, PolicyApplication, PolicyApplicationCentroid:
			cfg.Threshold = 16 // Figure 10's only workable setting
		case PolicyDirect:
			cfg.Threshold = 1 // unused
		default:
			return Config{}, vivaldi.Config{}, fmt.Errorf("netcoord: unknown policy %d", cfg.Policy)
		}
	}
	vcfg := vivaldi.Config{
		Dimension:    cfg.Dimension,
		CC:           cfg.CC,
		CE:           cfg.CE,
		InitialError: vivaldi.DefaultInitialError,
		ErrorMargin:  cfg.ErrorMargin,
		UseHeight:    cfg.UseHeight,
		HeightMin:    cfg.HeightMin,
		Seed:         cfg.Seed,
	}
	return cfg, vcfg, nil
}

func buildPolicy(cfg Config) (heuristic.Policy, error) {
	switch cfg.Policy {
	case PolicyEnergy:
		return heuristic.NewEnergy(cfg.Dimension, cfg.WindowSize, cfg.Threshold)
	case PolicyRelative:
		return heuristic.NewRelative(cfg.Dimension, cfg.WindowSize, cfg.Threshold)
	case PolicySystem:
		return heuristic.NewSystem(cfg.Dimension, cfg.Threshold)
	case PolicyApplication:
		return heuristic.NewApplication(cfg.Dimension, cfg.Threshold)
	case PolicyApplicationCentroid:
		return heuristic.NewApplicationCentroid(cfg.Dimension, cfg.WindowSize, cfg.Threshold)
	case PolicyDirect:
		return heuristic.NewDirect(cfg.Dimension)
	default:
		return nil, fmt.Errorf("unknown policy %d", cfg.Policy)
	}
}

func buildFilterFactory(cfg Config) (filter.Factory, error) {
	if cfg.DisableFilter {
		return func() filter.Filter { return filter.NewNone() }, nil
	}
	mpCfg := filter.MPConfig{
		History:     cfg.FilterHistory,
		Percentile:  cfg.FilterPercentile,
		UpdateAfter: cfg.FilterWarmup,
	}
	if err := mpCfg.Validate(); err != nil {
		return nil, err
	}
	return func() filter.Filter {
		f, err := filter.NewMP(mpCfg)
		if err != nil {
			// Validated above; unreachable, but never panic.
			return filter.NewNone()
		}
		return f
	}, nil
}

func inf() float64 { return math.Inf(1) }

// Observe feeds one RTT measurement (milliseconds) of the remote node
// identified by id, along with the remote's coordinate and error weight
// as carried by your protocol. It returns the updated coordinate state.
//
// Wrong-dimension or non-finite remote coordinates are rejected with an
// error and leave local state untouched — coordinates from the network
// must never be trusted blindly.
func (c *Client) Observe(id string, rttMillis float64, remote Coordinate, remoteError float64) (State, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := remote.Validate(c.cfg.Dimension); err != nil {
		return c.stateLocked(false), fmt.Errorf("netcoord: %w", err)
	}
	c.rememberPeer(id, remote, remoteError)
	filtered, ok := c.bank.Observe(id, rttMillis)
	if !ok {
		// Filter warming up: no update yet.
		return c.stateLocked(false), nil
	}
	if filtered < c.nnDist || id == c.nnID {
		c.nnID = id
		c.nnDist = filtered
		c.nnCoord = remote
		c.hasNN = true
	}
	newSys, err := c.viv.Update(filtered, remote, remoteError)
	if err != nil {
		return c.stateLocked(false), fmt.Errorf("netcoord: %w", err)
	}
	_, changed, err := c.policy.Observe(heuristic.Observation{
		Sys:         newSys,
		Neighbor:    c.nnCoord,
		HasNeighbor: c.hasNN,
	})
	if err != nil {
		return c.stateLocked(false), fmt.Errorf("netcoord: %w", err)
	}
	return c.stateLocked(changed), nil
}

func (c *Client) stateLocked(changed bool) State {
	return State{
		Sys:        c.viv.Coordinate(),
		App:        c.policy.App(),
		AppChanged: changed,
		Error:      c.viv.Error(),
	}
}

// Coordinate returns the current system-level coordinate.
func (c *Client) Coordinate() Coordinate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viv.Coordinate()
}

// AppCoordinate returns the current application-level coordinate.
func (c *Client) AppCoordinate() Coordinate {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.policy.App()
}

// Error returns the Vivaldi error weight w (low = confident).
func (c *Client) Error() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viv.Error()
}

// Confidence returns 1 - Error, the paper's Figure 6 quantity.
func (c *Client) Confidence() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.viv.Confidence()
}

// DistanceTo estimates the RTT in milliseconds from this node to a
// remote coordinate, using the system-level coordinate.
func (c *Client) DistanceTo(remote Coordinate) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := c.viv.EstimateRTT(remote)
	if err != nil {
		return 0, fmt.Errorf("netcoord: %w", err)
	}
	return d, nil
}

// AppDistanceTo estimates the RTT between this node's application-level
// coordinate and a remote application-level coordinate — the estimate a
// placement layer should use, since both ends move rarely.
func (c *Client) AppDistanceTo(remoteApp Coordinate) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, err := c.policy.App().DistanceTo(remoteApp)
	if err != nil {
		return 0, fmt.Errorf("netcoord: %w", err)
	}
	return d, nil
}

// ForgetLink drops per-link filter state for a departed peer.
func (c *Client) ForgetLink(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bank.Forget(id)
	c.forgetNN(id)
}

// forgetNN clears the cached nearest-neighbor state when the departed
// peer is the current nearest neighbor. Without this the RELATIVE
// policy keeps measuring centroid shift against the departed peer's
// stale coordinate indefinitely; resetting lets the next observation
// elect a new nearest neighbor. Callers hold c.mu.
func (c *Client) forgetNN(id string) {
	if c.nnID != id {
		return
	}
	c.nnID = ""
	c.nnDist = inf()
	c.nnCoord = Coordinate{}
	c.hasNN = false
}

// Links reports how many peers hold filter state.
func (c *Client) Links() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bank.Peers()
}
