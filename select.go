package netcoord

import (
	"fmt"
	"slices"

	"netcoord/internal/bheap"
)

// Candidate pairs an application identifier with that node's coordinate,
// for latency-aware selection.
type Candidate struct {
	// ID is the caller's name for the node.
	ID string
	// Coord is the node's coordinate — use application-level coordinates
	// here, so selections do not churn with every Vivaldi refinement.
	Coord Coordinate
}

// Ranked is a Candidate with its estimated RTT from the reference
// coordinate.
type Ranked struct {
	Candidate
	// EstimatedRTT is the predicted round-trip time in milliseconds.
	EstimatedRTT float64
}

// Nearest returns the k candidates with the smallest estimated RTT from
// the reference coordinate, ascending — the distributed
// k-nearest-neighbors primitive the paper's overlay work builds on. If
// fewer than k candidates are given, all are returned. Candidates whose
// coordinates cannot be compared with from (dimension mismatch) produce
// an error: silently dropping them would corrupt placement decisions.
//
// Selection runs in O(n log k): a bounded max-heap keeps the best k seen
// so far, so for the common k ≪ n case no full sort of the candidate set
// ever happens. Equal-RTT candidates rank in input order, exactly as the
// previous full stable sort ordered them. For repeated queries over a
// long-lived node set, use a Registry instead: its spatial index answers
// without visiting every candidate.
func Nearest(from Coordinate, candidates []Candidate, k int) ([]Ranked, error) {
	if k <= 0 {
		return nil, fmt.Errorf("netcoord: k = %d, want > 0", k)
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	h := bheap.New(k, rankedBefore)
	for i, c := range candidates {
		d, err := from.DistanceTo(c.Coord)
		if err != nil {
			return nil, fmt.Errorf("netcoord: candidate %q: %w", c.ID, err)
		}
		h.Offer(rankedAt{Ranked: Ranked{Candidate: c, EstimatedRTT: d}, pos: i})
	}
	kept := h.Items()
	// slices.SortFunc rather than sort.Slice: no interface boxing of the
	// slice header, so the sort itself contributes no allocations.
	//nc:allow(hotpath) generic SortFunc: the slice binds a type parameter, no interface boxing happens at runtime
	slices.SortFunc(kept, func(a, b rankedAt) int {
		if rankedBefore(a, b) {
			return -1
		}
		if rankedBefore(b, a) {
			return 1
		}
		return 0
	})
	out := make([]Ranked, len(kept))
	for i, it := range kept {
		out[i] = it.Ranked
	}
	return out, nil
}

// rankedAt carries the candidate's input position so that equal-RTT
// candidates keep their input order, matching a stable sort.
type rankedAt struct {
	Ranked
	pos int
}

// rankedBefore is the total order Nearest returns: RTT ascending, input
// position breaking ties.
func rankedBefore(a, b rankedAt) bool {
	if a.EstimatedRTT != b.EstimatedRTT {
		return a.EstimatedRTT < b.EstimatedRTT
	}
	return a.pos < b.pos
}

// MinimaxPlacement picks the candidate minimizing the worst-case
// estimated RTT to every anchor — the stream-operator placement decision
// from the paper's motivating application (e.g. a join operator between
// a producer and a consumer). Returns the best candidate and its
// worst-case RTT.
func MinimaxPlacement(anchors []Coordinate, candidates []Candidate) (Ranked, error) {
	if len(anchors) == 0 {
		return Ranked{}, fmt.Errorf("netcoord: no anchors")
	}
	if len(candidates) == 0 {
		return Ranked{}, fmt.Errorf("netcoord: no candidates")
	}
	best := Ranked{EstimatedRTT: -1}
	for _, c := range candidates {
		worst := 0.0
		for _, a := range anchors {
			d, err := c.Coord.DistanceTo(a)
			if err != nil {
				return Ranked{}, fmt.Errorf("netcoord: candidate %q: %w", c.ID, err)
			}
			if d > worst {
				worst = d
			}
		}
		if best.EstimatedRTT < 0 || worst < best.EstimatedRTT {
			best = Ranked{Candidate: c, EstimatedRTT: worst}
		}
	}
	return best, nil
}
