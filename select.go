package netcoord

import (
	"fmt"
	"sort"
)

// Candidate pairs an application identifier with that node's coordinate,
// for latency-aware selection.
type Candidate struct {
	// ID is the caller's name for the node.
	ID string
	// Coord is the node's coordinate — use application-level coordinates
	// here, so selections do not churn with every Vivaldi refinement.
	Coord Coordinate
}

// Ranked is a Candidate with its estimated RTT from the reference
// coordinate.
type Ranked struct {
	Candidate
	// EstimatedRTT is the predicted round-trip time in milliseconds.
	EstimatedRTT float64
}

// Nearest returns the k candidates with the smallest estimated RTT from
// the reference coordinate, ascending — the distributed
// k-nearest-neighbors primitive the paper's overlay work builds on. If
// fewer than k candidates are given, all are returned. Candidates whose
// coordinates cannot be compared with from (dimension mismatch) produce
// an error: silently dropping them would corrupt placement decisions.
func Nearest(from Coordinate, candidates []Candidate, k int) ([]Ranked, error) {
	if k <= 0 {
		return nil, fmt.Errorf("netcoord: k = %d, want > 0", k)
	}
	ranked := make([]Ranked, 0, len(candidates))
	for _, c := range candidates {
		d, err := from.DistanceTo(c.Coord)
		if err != nil {
			return nil, fmt.Errorf("netcoord: candidate %q: %w", c.ID, err)
		}
		ranked = append(ranked, Ranked{Candidate: c, EstimatedRTT: d})
	}
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].EstimatedRTT < ranked[j].EstimatedRTT
	})
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[:k], nil
}

// MinimaxPlacement picks the candidate minimizing the worst-case
// estimated RTT to every anchor — the stream-operator placement decision
// from the paper's motivating application (e.g. a join operator between
// a producer and a consumer). Returns the best candidate and its
// worst-case RTT.
func MinimaxPlacement(anchors []Coordinate, candidates []Candidate) (Ranked, error) {
	if len(anchors) == 0 {
		return Ranked{}, fmt.Errorf("netcoord: no anchors")
	}
	if len(candidates) == 0 {
		return Ranked{}, fmt.Errorf("netcoord: no candidates")
	}
	best := Ranked{EstimatedRTT: -1}
	for _, c := range candidates {
		worst := 0.0
		for _, a := range anchors {
			d, err := c.Coord.DistanceTo(a)
			if err != nil {
				return Ranked{}, fmt.Errorf("netcoord: candidate %q: %w", c.ID, err)
			}
			if d > worst {
				worst = d
			}
		}
		if best.EstimatedRTT < 0 || worst < best.EstimatedRTT {
			best = Ranked{Candidate: c, EstimatedRTT: worst}
		}
	}
	return best, nil
}
