package netcoord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FollowerConfig assembles a FollowerRegistry.
type FollowerConfig struct {
	// LeaderURL is the base URL of the leader's ncserve HTTP surface
	// (e.g. "http://10.0.0.1:8700"). The follower bootstraps from its
	// /snapshot and tails its /changes stream.
	LeaderURL string
	// Registry configures the local replica. TTL and JanitorInterval
	// are ignored (forced off): evictions are the leader's decision and
	// arrive through the stream — a follower evicting on its own clock
	// would diverge. ChangeStreamBuffer is likewise forced off; the
	// follower's authoritative sequence is the leader's.
	Registry RegistryConfig
	// WaitTimeout is the long-poll window handed to the leader's
	// /changes endpoint; the tail loop blocks server-side up to this
	// long when the stream is quiet. 0 means 25s.
	WaitTimeout time.Duration
	// RetryInterval is how long the tail loop backs off after an error
	// before contacting the leader again. 0 means 500ms.
	RetryInterval time.Duration
	// BatchLimit caps events fetched per /changes call. 0 means 4096.
	BatchLimit int
	// HTTPClient overrides the default client (which has no overall
	// timeout, as long-polls hold connections open deliberately).
	HTTPClient *http.Client
}

// FollowerStats reports a follower's replication position — the
// staleness a read-only replica serves with.
type FollowerStats struct {
	// LeaderURL is the leader being tailed.
	LeaderURL string `json:"leader_url"`
	// AppliedSeq is the last leader sequence applied locally.
	AppliedSeq uint64 `json:"applied_seq"`
	// LeaderSeq is the leader's stream sequence as of the last contact;
	// Lag is LeaderSeq - AppliedSeq, the events known outstanding.
	LeaderSeq uint64 `json:"leader_seq"`
	Lag       uint64 `json:"lag"`
	// LastContactAgeSeconds is how long ago the leader last answered
	// (-1 before first contact). With Lag 0, staleness is bounded by
	// this plus the leader's flush-to-stream latency (zero: events are
	// streamed from memory).
	LastContactAgeSeconds float64 `json:"last_contact_age_seconds"`
	// EventsApplied counts stream events applied since start.
	EventsApplied uint64 `json:"events_applied"`
	// Bootstraps counts snapshot loads: the initial one, plus one per
	// stream truncation (the follower fell further behind than the
	// leader retains).
	Bootstraps uint64 `json:"bootstraps"`
	// Errors counts failed leader calls; LastError is the most recent.
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
}

// errStreamGone signals a 410 from /changes: the resume point was
// compacted away and only a fresh snapshot can re-synchronize.
var errStreamGone = errors.New("netcoord: follower: leader history truncated")

// FollowerRegistry is a read-only replica of a leader registry,
// synchronized over the leader's change stream: it bootstraps from
// /snapshot (bulk-building the spatial index in one pass), then tails
// /changes with long-polls, applying upserts, removes, and evictions
// in leader order with UpdatedAt timestamps preserved bit-identically.
// If it falls further behind than the leader retains (ring + WAL), it
// re-bootstraps automatically.
//
// The embedded Registry serves every read — Nearest, Estimate, Get,
// Within — making the follower a horizontally scalable proximity
// read path; IDMS in PAPERS.md argues exactly this replicated-serving
// shape for delay estimation. Do not mutate it directly: local writes
// are not replicated anywhere and survive only until the leader next
// touches (or a re-bootstrap rebuilds) the same ids. FollowerStats
// reports the replica's staleness honestly so callers can decide how
// much to trust a read.
type FollowerRegistry struct {
	*Registry
	leaderURL string
	client    *http.Client
	wait      time.Duration
	retry     time.Duration
	limit     int

	applied   atomic.Uint64
	leaderSeq atomic.Uint64
	eventsApplied,
	bootstraps,
	errCount atomic.Uint64

	mu          sync.Mutex
	lastContact time.Time
	lastErr     string

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// StartFollower builds the local replica, performs the initial
// snapshot bootstrap synchronously — the caller serves warm data the
// moment it returns — and starts the background tail loop. Call Close
// to stop it.
func StartFollower(cfg FollowerConfig) (*FollowerRegistry, error) {
	base, err := url.Parse(cfg.LeaderURL)
	if err != nil || base.Host == "" || (base.Scheme != "http" && base.Scheme != "https") {
		return nil, fmt.Errorf("netcoord: follower: leader URL %q is not an absolute http(s) URL", cfg.LeaderURL)
	}
	regCfg := cfg.Registry
	regCfg.TTL = 0
	regCfg.JanitorInterval = 0
	regCfg.ChangeStreamBuffer = 0
	reg, err := NewRegistry(regCfg)
	if err != nil {
		return nil, err
	}
	wait := cfg.WaitTimeout
	if wait <= 0 {
		wait = 25 * time.Second
	}
	retry := cfg.RetryInterval
	if retry <= 0 {
		retry = 500 * time.Millisecond
	}
	limit := cfg.BatchLimit
	if limit <= 0 {
		limit = 4096
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &FollowerRegistry{
		Registry:  reg,
		leaderURL: strings.TrimRight(cfg.LeaderURL, "/"),
		client:    client,
		wait:      wait,
		retry:     retry,
		limit:     limit,
		ctx:       ctx,
		cancel:    cancel,
	}
	if err := f.bootstrap(); err != nil {
		cancel()
		reg.Close()
		return nil, fmt.Errorf("netcoord: follower: bootstrap from %s: %w", f.leaderURL, err)
	}
	f.wg.Add(1)
	go f.tail()
	return f, nil
}

// FollowerStats snapshots the replication position.
func (f *FollowerRegistry) FollowerStats() FollowerStats {
	applied, leader := f.applied.Load(), f.leaderSeq.Load()
	st := FollowerStats{
		LeaderURL:             f.leaderURL,
		AppliedSeq:            applied,
		LeaderSeq:             leader,
		EventsApplied:         f.eventsApplied.Load(),
		Bootstraps:            f.bootstraps.Load(),
		Errors:                f.errCount.Load(),
		LastContactAgeSeconds: -1,
	}
	if leader > applied {
		st.Lag = leader - applied
	}
	f.mu.Lock()
	if !f.lastContact.IsZero() {
		st.LastContactAgeSeconds = time.Since(f.lastContact).Seconds()
	}
	st.LastError = f.lastErr
	f.mu.Unlock()
	return st
}

// AppliedSeq is the last leader sequence applied locally — hand it to
// the leader's /changes to continue exactly where this replica stands.
func (f *FollowerRegistry) AppliedSeq() uint64 { return f.applied.Load() }

// Close stops the tail loop and the local registry.
func (f *FollowerRegistry) Close() {
	f.closeOnce.Do(func() {
		f.cancel()
		f.wg.Wait()
		f.Registry.Close()
	})
}

// tail follows the leader's change stream until Close.
func (f *FollowerRegistry) tail() {
	defer f.wg.Done()
	for f.ctx.Err() == nil {
		err := f.pollOnce()
		switch {
		case err == nil:
			// A long-poll returned (events or a quiet timeout): go right
			// back; pacing is the leader's wait window.
		case errors.Is(err, errStreamGone):
			f.noteErr(err)
			if berr := f.bootstrap(); berr != nil {
				f.noteErr(berr)
				f.sleep(f.retry)
			}
		case f.ctx.Err() != nil:
			return
		default:
			f.noteErr(err)
			f.sleep(f.retry)
		}
	}
}

// sleep waits d or until Close.
func (f *FollowerRegistry) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.ctx.Done():
	case <-t.C:
	}
}

func (f *FollowerRegistry) noteErr(err error) {
	f.errCount.Add(1)
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

func (f *FollowerRegistry) noteContact() {
	f.mu.Lock()
	f.lastContact = time.Now()
	f.mu.Unlock()
}

// changesResponse mirrors ncserve's /changes body.
type changesResponse struct {
	Seq    uint64        `json:"seq"`
	Events []ChangeEvent `json:"events"`
}

// snapshotResponse mirrors ncserve's /snapshot body. FollowerOf is set
// when the target is itself a replica — which cannot be followed,
// because it serves no change stream to tail.
type snapshotResponse struct {
	Seq        uint64        `json:"seq"`
	FollowerOf string        `json:"follower_of"`
	Entries    []ChangeEntry `json:"entries"`
}

// pollOnce long-polls /changes once from the current position and
// applies whatever it returns.
func (f *FollowerRegistry) pollOnce() error {
	since := f.applied.Load()
	u := fmt.Sprintf("%s/changes?since=%d&limit=%d&wait=%s",
		f.leaderURL, since, f.limit, url.QueryEscape(f.wait.String()))
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		f.noteContact()
		return errStreamGone
	default:
		return fmt.Errorf("leader /changes: %s", httpErrorDetail(resp))
	}
	var body changesResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("leader /changes: decode: %w", err)
	}
	f.noteContact()
	f.leaderSeq.Store(body.Seq)
	return f.apply(body.Events)
}

// apply replays a batch of leader events, in order, onto the local
// registry. Upserts preserve UpdatedAt exactly (upsertEntry only
// stamps zero timestamps); removes and evictions delete. The sequence
// must advance by at most one per event — a gap means the leader
// served us a hole, and the only safe repair is a fresh bootstrap.
func (f *FollowerRegistry) apply(events []ChangeEvent) error {
	applied := f.applied.Load()
	for _, ev := range events {
		switch {
		case ev.Seq == applied && ev.Op == ChangeEvict:
			// Continuation chunk of the eviction event just applied.
		case ev.Seq == applied+1:
		case ev.Seq <= applied:
			continue // duplicate delivery; already applied
		default:
			return fmt.Errorf("%w (gap: applied %d, next event %d)", errStreamGone, applied, ev.Seq)
		}
		switch ev.Op {
		case ChangeUpsert:
			if ev.Entry == nil {
				return fmt.Errorf("leader sent upsert event %d without entry", ev.Seq)
			}
			if err := f.Registry.upsertEntry(ev.Entry.Entry()); err != nil {
				return fmt.Errorf("apply upsert seq %d: %w", ev.Seq, err)
			}
		case ChangeRemove:
			f.Registry.Remove(ev.ID)
		case ChangeEvict:
			for _, id := range ev.IDs {
				f.Registry.Remove(id)
			}
		default:
			return fmt.Errorf("leader sent unknown op %q (seq %d)", ev.Op, ev.Seq)
		}
		applied = ev.Seq
		f.eventsApplied.Add(1)
	}
	f.applied.Store(applied)
	return nil
}

// bootstrap loads the leader's full snapshot and makes the local
// registry exactly match it: every snapshot entry is upserted with its
// original UpdatedAt, and any local id absent from the snapshot is
// removed (re-bootstrap after truncation may find stale locals). On a
// fresh registry the batch lands on the index.Build bulk path.
func (f *FollowerRegistry) bootstrap() error {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, f.leaderURL+"/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("leader /snapshot: %s", httpErrorDetail(resp))
	}
	var snap snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("leader /snapshot: decode: %w", err)
	}
	if snap.FollowerOf != "" {
		// Bootstrapping would "succeed" and then starve forever on the
		// replica's disabled /changes; refuse up front and name the real
		// leader.
		return fmt.Errorf("%s is itself a read-only replica of %s — follow that leader directly", f.leaderURL, snap.FollowerOf)
	}
	f.noteContact()
	batch := make([]RegistryEntry, len(snap.Entries))
	live := make(map[string]struct{}, len(snap.Entries))
	for i, e := range snap.Entries {
		batch[i] = e.Entry()
		live[e.ID] = struct{}{}
	}
	if err := f.Registry.UpsertBatch(batch); err != nil {
		return fmt.Errorf("apply snapshot: %w", err)
	}
	for _, e := range f.Registry.Snapshot() {
		if _, ok := live[e.ID]; !ok {
			f.Registry.Remove(e.ID)
		}
	}
	f.applied.Store(snap.Seq)
	if snap.Seq > f.leaderSeq.Load() {
		f.leaderSeq.Store(snap.Seq)
	}
	f.bootstraps.Add(1)
	return nil
}

// httpErrorDetail summarizes a non-200 response, including the JSON
// error field when the body carries one.
func httpErrorDetail(resp *http.Response) string {
	var body struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Sprintf("%s (%s)", resp.Status, body.Error)
	}
	return resp.Status
}
