package netcoord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netcoord/internal/changefeed"
	"netcoord/internal/telemetry"
	"netcoord/internal/wire"
)

// Follower retry policy: capped jittered exponential backoff, the same
// shape the serving layer's notifier re-attach loop uses. The base is
// the first sleep after an error; every consecutive failure doubles it
// up to the cap, and each sleep is jittered across its upper half so a
// fleet of followers orphaned by one leader death does not reconnect in
// lockstep.
const (
	DefaultFollowerRetryBase = 50 * time.Millisecond
	followerRetryMax         = 5 * time.Second
	// followerDialTimeout bounds connection establishment; a partitioned
	// upstream fails fast instead of consuming a kernel-default TCP
	// timeout per attempt.
	followerDialTimeout = 5 * time.Second
	// followerHeaderSlack is added to the long-poll wait window to bound
	// how long a /changes call may go headerless before the client gives
	// up on a wedged upstream.
	followerHeaderSlack = 10 * time.Second
	// followerBootstrapTimeout bounds one whole snapshot transfer.
	followerBootstrapTimeout = 5 * time.Minute
)

// FollowerConfig assembles a FollowerRegistry.
type FollowerConfig struct {
	// Upstreams is the ordered list of base URLs this follower may tail
	// (e.g. "http://10.0.0.1:8700"): the first is preferred, the rest
	// are failover targets. The follower bootstraps from the first live
	// upstream's /snapshot and tails its /changes stream; when an
	// upstream dies — or turns out to be a deposed leader serving a
	// stale fencing epoch — the follower rotates to the next and resumes
	// from its applied sequence (or a delta re-bootstrap) across the
	// boundary.
	Upstreams []string
	// LeaderURL is the single-upstream form of Upstreams, kept for
	// callers wired before failover existed; when both are set it is
	// treated as the most-preferred upstream.
	LeaderURL string
	// Registry configures the local replica. TTL and JanitorInterval
	// are ignored (forced off): evictions are the leader's decision and
	// arrive through the stream — a follower evicting on its own clock
	// would diverge. ChangeStreamBuffer sizes the follower's *relay*
	// ring instead of a local stream (0 = DefaultChangeStreamBuffer):
	// the follower republishes every applied event under the leader's
	// own sequence number, so it re-serves /changes, /watch, and
	// /snapshot in the leader's sequence space and replicas chain into
	// fan-out tiers.
	Registry RegistryConfig
	// WaitTimeout is the long-poll window handed to the leader's
	// /changes endpoint; the tail loop blocks server-side up to this
	// long when the stream is quiet. 0 means 25s.
	WaitTimeout time.Duration
	// RetryInterval is the backoff BASE after an error: the first sleep,
	// doubled per consecutive failure up to 5s, jittered. 0 means
	// DefaultFollowerRetryBase (50ms).
	RetryInterval time.Duration
	// BatchLimit caps events fetched per /changes call. 0 means 4096.
	BatchLimit int
	// HTTPClient overrides the default client (which has a dial timeout
	// and a response-header timeout sized to the long-poll window, but
	// no overall timeout — long-polls hold connections open
	// deliberately).
	HTTPClient *http.Client
	// DisableBinaryStream forces JSON on /changes and /snapshot. By
	// default the follower offers the binary frame encoding via Accept
	// and uses whichever the upstream answers with — an upstream that
	// predates frames (or has them disabled) simply keeps serving JSON,
	// so mixed-version chains degrade per hop, not per tree.
	DisableBinaryStream bool
}

// FollowerStats reports a follower's replication position — the
// staleness a read-only replica serves with.
type FollowerStats struct {
	// LeaderURL is the upstream currently being tailed; Upstreams is
	// the full ordered failover list.
	LeaderURL string   `json:"leader_url"`
	Upstreams []string `json:"upstreams,omitempty"`
	// AppliedSeq is the last leader sequence applied locally.
	AppliedSeq uint64 `json:"applied_seq"`
	// LeaderSeq is the leader's stream sequence as of the last contact;
	// Lag is LeaderSeq - AppliedSeq, the events known outstanding.
	LeaderSeq uint64 `json:"leader_seq"`
	Lag       uint64 `json:"lag"`
	// Epoch is the fencing epoch of the stream this replica carries;
	// Promoted reports whether this process has been promoted to
	// leader (the tail loop is stopped and local writes are sequenced).
	Epoch    uint64 `json:"epoch"`
	Promoted bool   `json:"promoted"`
	// LastContactAgeSeconds is how long ago the leader last answered
	// (-1 before first contact). With Lag 0, staleness is bounded by
	// this plus the leader's flush-to-stream latency (zero: events are
	// streamed from memory).
	LastContactAgeSeconds float64 `json:"last_contact_age_seconds"`
	// EventsApplied counts stream events applied since start.
	EventsApplied uint64 `json:"events_applied"`
	// FramesReceived counts events that arrived in the binary frame
	// encoding (zero means every batch so far was JSON — either the
	// upstream doesn't speak frames or DisableBinaryStream is set).
	FramesReceived uint64 `json:"frames_received"`
	// Bootstraps counts snapshot loads: the initial one, plus one per
	// stream truncation (the follower fell further behind than the
	// leader retains).
	Bootstraps uint64 `json:"bootstraps"`
	// DeltaBootstraps counts the subset of Bootstraps served as deltas
	// (/snapshot?since=): only the entries changed since the follower's
	// applied sequence travelled, not the whole registry.
	DeltaBootstraps uint64 `json:"delta_bootstraps"`
	// Failovers counts rotations to the next upstream; Reconnects
	// counts successful resumptions after one or more errors (on the
	// same upstream or a new one). RejectedStaleEpoch counts responses
	// and events refused because they carried a lower fencing epoch
	// than this replica's stream — a deposed leader still serving.
	Failovers          uint64 `json:"failovers"`
	Reconnects         uint64 `json:"reconnects"`
	RejectedStaleEpoch uint64 `json:"rejected_stale_epoch"`
	// Errors counts failed leader calls; LastError is the most recent.
	Errors    uint64 `json:"errors"`
	LastError string `json:"last_error,omitempty"`
	// ApplyLagNs summarizes publish→apply propagation lag: for every
	// applied event carrying a leader publish stamp, the wall-clock
	// nanoseconds between the leader publishing it and this replica
	// applying it. This is the true end-to-end staleness of the relay
	// chain (cross-host clock skew included; negative lags clamp to 0).
	ApplyLagNs telemetry.Summary `json:"apply_lag_ns"`
	// LastBootstrapSeconds and LastBootstrapKind describe the most
	// recent snapshot load: how long it took and whether it was a
	// "full" or "delta" transfer.
	LastBootstrapSeconds float64 `json:"last_bootstrap_seconds"`
	LastBootstrapKind    string  `json:"last_bootstrap_kind,omitempty"`
}

// errStreamGone signals a 410 from /changes: the resume point was
// compacted away and only a fresh snapshot can re-synchronize.
var errStreamGone = errors.New("netcoord: follower: leader history truncated")

// errStaleEpoch signals that an upstream served a lower fencing epoch
// than this replica's stream carries: it is a deposed leader (or a
// replica still following one). The only correct reaction is to refuse
// everything it sent and rotate to the next upstream.
var errStaleEpoch = errors.New("netcoord: follower: upstream serves a stale fencing epoch")

// ErrNotPromotable is returned by Promote on a follower that was
// already promoted.
var ErrNotPromotable = errors.New("netcoord: follower: already promoted")

// FollowerRegistry is a read-only replica of a leader registry,
// synchronized over the leader's change stream: it bootstraps from
// /snapshot (bulk-building the spatial index in one pass), then tails
// /changes with long-polls, applying upserts, removes, and evictions
// in leader order with UpdatedAt timestamps preserved bit-identically.
// If it falls further behind than the leader retains (ring + WAL), it
// re-bootstraps automatically — fetching only the entries changed since
// its applied sequence when the leader can serve a delta.
//
// The embedded Registry serves every read — Nearest, Estimate, Get,
// Within — making the follower a horizontally scalable proximity
// read path; IDMS in PAPERS.md argues exactly this replicated-serving
// shape for delay estimation. Do not mutate it directly: local writes
// are not replicated anywhere and survive only until the leader next
// touches (or a re-bootstrap rebuilds) the same ids. FollowerStats
// reports the replica's staleness honestly so callers can decide how
// much to trust a read.
//
// A follower is itself a ChangeSource: every applied event is
// republished into a relay feed under the leader's sequence number, so
// ChangesSince / SubscribeChanges / SnapshotWithSeq speak the leader's
// sequence space and a serving layer on top of a follower re-serves
// the stream endpoints identically to the leader. A consumer that
// outruns the relay ring gets ErrChangeHistoryTruncated and
// re-bootstraps from this follower's snapshot — the same protocol it
// would run against the leader — which is what lets replicas chain
// (follower-of-follower) into a fan-out tree.
//
// Failure handling: the tail loop survives upstream death. Errors back
// off with capped jittered exponentials; a second consecutive failure
// (or any stale-epoch detection) rotates to the next configured
// upstream, resuming from the applied sequence — the whole tree speaks
// one sequence space, so any replica of the same stream can take over
// as parent mid-stream. Promote turns this replica into the leader:
// the fencing epoch is bumped, the relay becomes the write feed, and
// every subsequent local mutation continues the dense sequence space
// under the new epoch, fencing out whatever the deposed leader still
// writes.
type FollowerRegistry struct {
	*Registry
	upstreams []string
	active    atomic.Int32
	client    *http.Client
	wait      time.Duration
	retry     time.Duration
	limit     int
	// binary offers the frame encoding on /changes and /snapshot;
	// either side may decline, so every response is branched on its
	// Content-Type rather than on this flag.
	binary bool

	// relay republishes applied events in the leader's sequence space;
	// created at the initial bootstrap, reset on every re-bootstrap
	// (the old ring describes a stream position that no longer connects
	// to the rewritten state). After promotion it IS the write feed.
	relay    *changefeed.Feed
	relayBuf int

	applied        atomic.Uint64
	leaderSeq      atomic.Uint64
	framesReceived atomic.Uint64
	eventsApplied,
	bootstraps,
	deltaBootstraps,
	failovers,
	reconnects,
	rejectedStale,
	errCount atomic.Uint64

	promoted    atomic.Bool
	promoteOnce sync.Once

	// applyLag accumulates publish→apply propagation lag (ns) for every
	// applied event that carries a leader publish stamp.
	applyLag *telemetry.Histogram
	// lastBootstrapNs is the duration of the most recent bootstrap;
	// lastBootstrapDelta records whether it was a delta transfer.
	lastBootstrapNs    atomic.Int64
	lastBootstrapDelta atomic.Bool

	mu          sync.Mutex
	lastContact time.Time
	lastErr     string

	// bootMu serializes the (re-)bootstrap rewrite against snapshot and
	// history reads: without it a chained replica could capture a
	// half-rewritten registry paired with a pre-rewrite sequence.
	bootMu sync.RWMutex

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// StartFollower builds the local replica, performs the initial
// snapshot bootstrap synchronously — trying each configured upstream in
// order until one answers, so the caller serves warm data the moment it
// returns — and starts the background tail loop. Call Close to stop it.
func StartFollower(cfg FollowerConfig) (*FollowerRegistry, error) {
	var upstreams []string
	if cfg.LeaderURL != "" {
		upstreams = append(upstreams, cfg.LeaderURL)
	}
	upstreams = append(upstreams, cfg.Upstreams...)
	if len(upstreams) == 0 {
		return nil, fmt.Errorf("netcoord: follower: no upstreams configured")
	}
	for i, u := range upstreams {
		base, err := url.Parse(u)
		if err != nil || base.Host == "" || (base.Scheme != "http" && base.Scheme != "https") {
			return nil, fmt.Errorf("netcoord: follower: upstream URL %q is not an absolute http(s) URL", u)
		}
		upstreams[i] = strings.TrimRight(u, "/")
	}
	regCfg := cfg.Registry
	regCfg.TTL = 0
	regCfg.JanitorInterval = 0
	relayBuf := regCfg.ChangeStreamBuffer
	if relayBuf <= 0 {
		relayBuf = DefaultChangeStreamBuffer
	}
	// The registry's own feed stays off: the follower's sequence space
	// is the leader's, carried by the relay — a locally numbered stream
	// would hand consumers sequences no other tier recognizes. (The
	// relay is installed as the registry's feed at promotion.)
	regCfg.ChangeStreamBuffer = 0
	reg, err := NewRegistry(regCfg)
	if err != nil {
		return nil, err
	}
	wait := cfg.WaitTimeout
	if wait <= 0 {
		wait = 25 * time.Second
	}
	retry := cfg.RetryInterval
	if retry <= 0 {
		retry = DefaultFollowerRetryBase
	}
	limit := cfg.BatchLimit
	if limit <= 0 {
		limit = 4096
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				DialContext: (&net.Dialer{
					Timeout: followerDialTimeout,
				}).DialContext,
				// A wedged upstream must fail the poll shortly after the
				// long-poll window, not hold a goroutine hostage.
				ResponseHeaderTimeout: wait + followerHeaderSlack,
				MaxIdleConnsPerHost:   4,
			},
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &FollowerRegistry{
		Registry:  reg,
		upstreams: upstreams,
		client:    client,
		wait:      wait,
		retry:     retry,
		limit:     limit,
		binary:    !cfg.DisableBinaryStream,
		relayBuf:  relayBuf,
		applyLag:  telemetry.NewHistogram(),
		ctx:       ctx,
		cancel:    cancel,
	}
	var bootErr error
	for range upstreams {
		if bootErr = f.bootstrap(); bootErr == nil {
			break
		}
		f.active.Store((f.active.Load() + 1) % int32(len(upstreams)))
	}
	if bootErr != nil {
		cancel()
		reg.Close()
		return nil, fmt.Errorf("netcoord: follower: bootstrap (tried %d upstreams, last %s): %w", len(upstreams), f.upstream(), bootErr)
	}
	f.wg.Add(1)
	go f.tail()
	return f, nil
}

// upstream is the base URL currently being tailed.
func (f *FollowerRegistry) upstream() string {
	return f.upstreams[int(f.active.Load())%len(f.upstreams)]
}

// rotateUpstream fails over to the next configured upstream. With a
// single upstream it is a no-op (there is nowhere to go; backoff keeps
// retrying the one we have).
func (f *FollowerRegistry) rotateUpstream() {
	if len(f.upstreams) < 2 {
		return
	}
	f.active.Store((f.active.Load() + 1) % int32(len(f.upstreams)))
	f.failovers.Add(1)
}

// epoch is the fencing epoch of the stream this replica carries.
func (f *FollowerRegistry) epoch() uint64 {
	if r := f.relay; r != nil {
		return r.Epoch()
	}
	return 0
}

// FollowerStats snapshots the replication position.
func (f *FollowerRegistry) FollowerStats() FollowerStats {
	applied, leader := f.applied.Load(), f.leaderSeq.Load()
	st := FollowerStats{
		LeaderURL:             f.upstream(),
		Upstreams:             f.upstreams,
		AppliedSeq:            applied,
		LeaderSeq:             leader,
		Epoch:                 f.epoch(),
		Promoted:              f.promoted.Load(),
		EventsApplied:         f.eventsApplied.Load(),
		FramesReceived:        f.framesReceived.Load(),
		Bootstraps:            f.bootstraps.Load(),
		DeltaBootstraps:       f.deltaBootstraps.Load(),
		Failovers:             f.failovers.Load(),
		Reconnects:            f.reconnects.Load(),
		RejectedStaleEpoch:    f.rejectedStale.Load(),
		Errors:                f.errCount.Load(),
		LastContactAgeSeconds: -1,
		ApplyLagNs:            f.applyLag.Summary(),
		LastBootstrapSeconds:  float64(f.lastBootstrapNs.Load()) / 1e9,
	}
	if f.bootstraps.Load() > 0 {
		if f.lastBootstrapDelta.Load() {
			st.LastBootstrapKind = "delta"
		} else {
			st.LastBootstrapKind = "full"
		}
	}
	if leader > applied {
		st.Lag = leader - applied
	}
	f.mu.Lock()
	if !f.lastContact.IsZero() {
		st.LastContactAgeSeconds = time.Since(f.lastContact).Seconds()
	}
	st.LastError = f.lastErr
	f.mu.Unlock()
	return st
}

// AppliedSeq is the last leader sequence applied locally — hand it to
// the leader's /changes to continue exactly where this replica stands.
func (f *FollowerRegistry) AppliedSeq() uint64 { return f.applied.Load() }

// Promoted reports whether this replica has been promoted to leader.
func (f *FollowerRegistry) Promoted() bool { return f.promoted.Load() }

// Promote turns this replica into the authoritative leader of the
// stream it carries. The tail loop is stopped and drained (no more
// upstream events can race local writes), the fencing epoch is bumped,
// and the relay — which sits exactly at the applied sequence — is
// installed as the registry's write feed, so every subsequent local
// mutation continues the dense sequence space under the new epoch.
// Anything the deposed leader still writes carries the old epoch and is
// rejected by every replica and watcher that followed the promotion.
//
// Promote returns the new epoch. It is idempotent: later calls return
// ErrNotPromotable with the already-established epoch. The caller owns
// making promotion unique across the deployment (promote exactly one
// replica); two promoted leaders fence each other's followers into
// whichever epoch is higher.
func (f *FollowerRegistry) Promote() (uint64, error) {
	first := false
	f.promoteOnce.Do(func() {
		first = true
		f.cancel()
		f.wg.Wait()
		f.bootMu.Lock()
		defer f.bootMu.Unlock()
		epoch := f.relay.Epoch() + 1
		f.relay.SetEpoch(epoch)
		// The relay's sequence equals the applied sequence, so writes
		// published through the registry continue the dense total order
		// exactly where replication stopped.
		f.Registry.installFeed(f.relay)
		f.promoted.Store(true)
	})
	if !first {
		return f.epoch(), ErrNotPromotable
	}
	return f.epoch(), nil
}

// Close stops the tail loop, the relay (closing every subscription),
// and the local registry.
func (f *FollowerRegistry) Close() {
	f.closeOnce.Do(func() {
		f.cancel()
		f.wg.Wait()
		if f.relay != nil {
			f.relay.Close()
		}
		f.Registry.Close()
	})
}

// ChangeSeq is the follower's position in the leader's sequence space.
// After promotion it is the relay's live sequence — local writes keep
// the same clock ticking.
func (f *FollowerRegistry) ChangeSeq() uint64 {
	if f.promoted.Load() {
		return f.relay.Seq()
	}
	return f.applied.Load()
}

// ChangeEpoch is the fencing epoch of the stream this replica carries.
func (f *FollowerRegistry) ChangeEpoch() uint64 { return f.epoch() }

// ChangesSince serves the leader's events back out of the relay ring,
// with the leader's own sequence numbers. A resume point older than the
// ring returns ErrChangeHistoryTruncated: the consumer re-bootstraps
// from this follower's SnapshotWithSeq, exactly as it would against the
// leader.
func (f *FollowerRegistry) ChangesSince(since uint64, max int) ([]ChangeEvent, error) {
	f.bootMu.RLock()
	defer f.bootMu.RUnlock()
	return feedChangesSince(f.relay, since, max, "relay ring")
}

// SubscribeChanges attaches a live subscriber to the relay. The
// subscription's channel closes when the follower re-bootstraps (its
// ring no longer connects to the rewritten state) or closes; consumers
// re-subscribe and resynchronize from current state.
func (f *FollowerRegistry) SubscribeChanges(buffer int) (*ChangeSubscription, error) {
	return newChangeSubscription(f.relay, buffer), nil
}

// SnapshotWithSeq captures the replica's entries together with its
// applied position in the leader's sequence space — the bootstrap pair
// a chained replica (or any catch-up consumer) resumes from. The
// sequence is read before the capture, so the entries are a superset of
// the stream at seq and replay converges exactly.
func (f *FollowerRegistry) SnapshotWithSeq() ([]RegistryEntry, uint64) {
	f.bootMu.RLock()
	defer f.bootMu.RUnlock()
	seq := f.ChangeSeq()
	return f.Registry.Snapshot(), seq
}

// ChangeStreamStats snapshots the relay's counters.
func (f *FollowerRegistry) ChangeStreamStats() ChangeStreamStats {
	return feedStreamStats(f.relay)
}

// RemovedSince serves the removal half of a delta snapshot from the
// relay's tombstone ring — in the leader's sequence space, like
// everything else this replica re-serves.
func (f *FollowerRegistry) RemovedSince(since uint64) ([]string, bool) {
	f.bootMu.RLock()
	defer f.bootMu.RUnlock()
	return f.relay.RemovedSince(since)
}

// DeltaSince assembles the delta-snapshot triple atomically with
// respect to re-bootstraps: the read lock excludes the bootstrap
// rewrite, so a chained replica can never pair a pre-rewrite sequence
// with a post-rewrite entry scan (or a removed list with a hole where
// the rewrite applied removals).
func (f *FollowerRegistry) DeltaSince(since uint64) (entries []RegistryEntry, removed []string, seq uint64, ok bool) {
	f.bootMu.RLock()
	defer f.bootMu.RUnlock()
	return assembleDelta(since, f.ChangeSeq(), f.relay.RemovedSince, f.Registry.EntriesChangedSince)
}

// tail follows the current upstream's change stream until Close (or
// Promote). Transient errors back off with capped jittered
// exponentials; a second consecutive failure rotates to the next
// upstream, and a stale-epoch detection rotates immediately — a
// deposed leader never becomes healthy again, so waiting on it is
// pure unavailability.
func (f *FollowerRegistry) tail() {
	defer f.wg.Done()
	backoff := f.retry
	consecutive := 0
	for f.ctx.Err() == nil {
		err := f.pollOnce()
		switch {
		case err == nil:
			if consecutive > 0 {
				f.reconnects.Add(1)
			}
			consecutive = 0
			backoff = f.retry
		case f.ctx.Err() != nil:
			return
		case errors.Is(err, errStaleEpoch):
			f.noteErr(err)
			f.rotateUpstream()
			consecutive = 0
			backoff = f.sleepBackoff(backoff)
		case errors.Is(err, errStreamGone):
			f.noteErr(err)
			berr := f.bootstrap()
			switch {
			case berr == nil:
				if consecutive > 0 {
					f.reconnects.Add(1)
				}
				consecutive = 0
				backoff = f.retry
			case errors.Is(berr, errStaleEpoch):
				f.noteErr(berr)
				f.rotateUpstream()
				consecutive = 0
				backoff = f.sleepBackoff(backoff)
			default:
				f.noteErr(berr)
				consecutive++
				if consecutive >= 2 {
					f.rotateUpstream()
					consecutive = 0
				}
				backoff = f.sleepBackoff(backoff)
			}
		default:
			f.noteErr(err)
			consecutive++
			if consecutive >= 2 {
				// One failure can be a blip; two in a row reads as a dead
				// upstream. Rotate rather than wait out the full backoff
				// ladder against a corpse.
				f.rotateUpstream()
				consecutive = 0
			}
			backoff = f.sleepBackoff(backoff)
		}
	}
}

// sleepBackoff sleeps a jittered cur (uniform over [cur/2, cur]) or
// until Close, and returns the next backoff (doubled, capped).
func (f *FollowerRegistry) sleepBackoff(cur time.Duration) time.Duration {
	d := cur/2 + time.Duration(rand.Int63n(int64(cur/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-f.ctx.Done():
	case <-t.C:
	}
	next := cur * 2
	if next > followerRetryMax {
		next = followerRetryMax
	}
	return next
}

func (f *FollowerRegistry) noteErr(err error) {
	f.errCount.Add(1)
	f.mu.Lock()
	f.lastErr = err.Error()
	f.mu.Unlock()
}

func (f *FollowerRegistry) noteContact() {
	f.mu.Lock()
	f.lastContact = time.Now()
	f.mu.Unlock()
}

// LastContact reports when the current upstream last answered (zero
// before first contact) — the basis of the staleness bound a degraded
// replica advertises on reads.
func (f *FollowerRegistry) LastContact() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastContact
}

// changesResponse mirrors ncserve's /changes body.
type changesResponse struct {
	Seq    uint64        `json:"seq"`
	Epoch  uint64        `json:"epoch"`
	Events []ChangeEvent `json:"events"`
}

// snapshotResponse mirrors ncserve's /snapshot body. FollowerOf names
// the upstream when the target is itself a replica (informational —
// replicas relay the stream, so they can be followed). Delta marks a
// ?since= response carrying only the entries changed since that
// sequence, plus the ids removed since it.
type snapshotResponse struct {
	Seq        uint64        `json:"seq"`
	Epoch      uint64        `json:"epoch"`
	FollowerOf string        `json:"follower_of"`
	Delta      bool          `json:"delta"`
	Entries    []ChangeEntry `json:"entries"`
	Removed    []string      `json:"removed"`
}

// pollOnce long-polls /changes once from the current position and
// applies whatever it returns. The request carries a deadline past the
// long-poll window so a wedged upstream (connected but never
// finishing) fails the poll instead of hanging the tail loop forever.
func (f *FollowerRegistry) pollOnce() error {
	since := f.applied.Load()
	u := fmt.Sprintf("%s/changes?since=%d&limit=%d&wait=%s",
		f.upstream(), since, f.limit, url.QueryEscape(f.wait.String()))
	ctx, cancel := context.WithTimeout(f.ctx, f.wait+2*followerHeaderSlack)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	if f.binary {
		req.Header.Set("Accept", wire.ContentTypeFrames)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close() // drained above; the response was already consumed
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		f.noteContact()
		return errStreamGone
	default:
		return fmt.Errorf("leader /changes: %s", httpErrorDetail(resp))
	}
	if resp.Header.Get("Content-Type") == wire.ContentTypeFrames {
		// The upstream answered in frames: the whole batch is read as one
		// byte slab, and each frame's bytes become the event's cached
		// encoding — applied here, relayed verbatim below.
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return fmt.Errorf("leader /changes: read frames: %w", err)
		}
		f.noteContact()
		return f.applyFrames(data)
	}
	var body changesResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return fmt.Errorf("leader /changes: decode: %w", err)
	}
	f.noteContact()
	// Body-level fencing: an upstream whose stream epoch is behind ours
	// is deposed (or still following the deposed leader) — detectable
	// even on an empty batch, so the follower rotates away instead of
	// quietly tailing a fork. An upstream merely lagging the promotion
	// reports the old epoch too, but rotating off it is also right: it
	// cannot have events we need that the promoted chain lacks.
	if own := f.epoch(); body.Epoch < own {
		f.rejectedStale.Add(1)
		return fmt.Errorf("%w (/changes epoch %d < local %d)", errStaleEpoch, body.Epoch, own)
	}
	f.leaderSeq.Store(body.Seq)
	return f.apply(body.Events)
}

// applyFrames decodes one binary /changes batch and applies it through
// the ordinary event path. Each event keeps a zero-copy view of its own
// frame bytes as its cached encoding, so when the relay fans this event
// out to the next tier it forwards the leader's bytes verbatim — the
// decode here is for applying, never for re-encoding.
func (f *FollowerRegistry) applyFrames(body []byte) error {
	hdr, n, err := wire.DecodeBatchHeader(body)
	if err != nil {
		return fmt.Errorf("leader /changes: frames: %w", err)
	}
	// Body-level fencing, same as the JSON path: a stale stream epoch is
	// detectable even on an empty batch.
	if own := f.epoch(); hdr.Epoch < own {
		f.rejectedStale.Add(1)
		return fmt.Errorf("%w (/changes epoch %d < local %d)", errStaleEpoch, hdr.Epoch, own)
	}
	if hdr.Count > uint64(len(body)) {
		// Every frame takes more than one byte, so a count past the body
		// length is structurally impossible — refuse before sizing
		// anything by it.
		return fmt.Errorf("leader /changes: frames: count %d exceeds body size %d", hdr.Count, len(body))
	}
	f.leaderSeq.Store(hdr.Seq)
	events := make([]ChangeEvent, 0, hdr.Count)
	off := n
	for i := uint64(0); i < hdr.Count; i++ {
		// A fresh Frame per iteration: DecodeFrameInto reuses backing
		// storage, and these events outlive the loop inside the relay.
		var fr wire.Frame
		m, err := wire.DecodeFrameInto(&fr, body[off:])
		if err != nil {
			return fmt.Errorf("leader /changes: frame %d/%d: %w", i+1, hdr.Count, err)
		}
		end := off + m
		ev, err := changeEventFromFrame(&fr)
		if err != nil {
			return fmt.Errorf("leader /changes: %w", err)
		}
		enc := &changefeed.Encoded{}
		enc.StoreFrame(body[off:end:end])
		ev.enc = enc
		events = append(events, ev)
		off = end
	}
	if off != len(body) {
		return fmt.Errorf("leader /changes: frames: %d trailing bytes after %d frames", len(body)-off, hdr.Count)
	}
	f.framesReceived.Add(uint64(len(events)))
	return f.apply(events)
}

// apply replays a batch of leader events, in order, onto the local
// registry, republishing each applied event into the relay under the
// leader's own sequence number (apply first, then publish: a relay
// subscriber woken by an event always observes a registry that already
// reflects it). Upserts preserve UpdatedAt exactly (upsertEntry only
// stamps zero timestamps); removes and evictions delete. The sequence
// must advance by at most one per event — a gap means the leader
// served us a hole, and the only safe repair is a fresh bootstrap.
// An event carrying a lower fencing epoch than the stream already
// adopted is a deposed leader's write: it is rejected and the follower
// rotates upstream (per-event defense in depth under the body-level
// check in pollOnce).
func (f *FollowerRegistry) apply(events []ChangeEvent) error {
	applied := f.applied.Load()
	epoch := f.epoch()
	for _, ev := range events {
		if ev.Epoch < epoch {
			f.rejectedStale.Add(1)
			return fmt.Errorf("%w (event seq %d epoch %d < local %d)", errStaleEpoch, ev.Seq, ev.Epoch, epoch)
		}
		epoch = ev.Epoch
		switch {
		case ev.Seq == applied && ev.Op == ChangeEvict:
			// Continuation chunk of the eviction event just applied
			// (the WAL splits one oversized eviction across records
			// sharing a sequence); the relay folds it back into the
			// ring's tail event.
		case ev.Seq == applied+1:
		case ev.Seq <= applied:
			continue // duplicate delivery; already applied
		default:
			return fmt.Errorf("%w (gap: applied %d, next event %d)", errStreamGone, applied, ev.Seq)
		}
		switch ev.Op {
		case ChangeUpsert:
			if ev.Entry == nil {
				return fmt.Errorf("leader sent upsert event %d without entry", ev.Seq)
			}
			e := ev.Entry.Entry()
			// The entry keeps the leader's sequence (the local feed is
			// off, so upsertEntry won't stamp one): chained delta
			// snapshots depend on per-entry sequences surviving tiers.
			e.Seq = ev.Seq
			if err := f.Registry.upsertEntry(e); err != nil {
				return fmt.Errorf("apply upsert seq %d: %w", ev.Seq, err)
			}
		case ChangeRemove:
			f.Registry.Remove(ev.ID)
		case ChangeEvict:
			for _, id := range ev.IDs {
				f.Registry.Remove(id)
			}
		default:
			return fmt.Errorf("leader sent unknown op %q (seq %d)", ev.Op, ev.Seq)
		}
		// Advance the applied position BEFORE the relay delivers: the
		// notifier broadcast rides the delivery, and a woken poller
		// re-checks ChangeSeq() — if that still returned the old
		// position, the poller would re-park with no further wake
		// coming (the leader path orders its seqAtomic the same way).
		applied = ev.Seq
		f.applied.Store(applied)
		f.relay.PublishAt(toFeedEvent(ev))
		f.eventsApplied.Add(1)
		if ev.PubNs > 0 {
			f.applyLag.Observe(time.Now().UnixNano() - ev.PubNs)
		}
	}
	return nil
}

// bootstrap synchronizes the local registry with the leader's snapshot.
//
// The initial call (and any re-bootstrap the leader answers in full)
// upserts every snapshot entry with its original UpdatedAt and removes
// any local id absent from the snapshot; on a fresh registry the batch
// lands on the index.Build bulk path. A re-bootstrap after truncation
// asks for /snapshot?since=<applied> instead: when the leader can prove
// coverage from its ring/WAL history it answers with a delta — only the
// entries changed since that sequence, plus the removed ids — so a
// replica that fell just past the retained stream repairs itself with
// traffic proportional to what it missed, not to the registry.
//
// Afterwards the relay restarts at the snapshot sequence: the previous
// ring described a stream position that no longer connects to the
// rewritten state, so every relay subscriber is closed and resyncs —
// the same protocol they run when they fall off the ring.
//
// A snapshot carrying a lower fencing epoch than the stream already
// adopted is refused outright: re-basing onto a deposed leader's state
// would fork this replica (and every tier below it) off the promoted
// history.
func (f *FollowerRegistry) bootstrap() error {
	start := time.Now()
	snapURL := f.upstream() + "/snapshot"
	applied := f.applied.Load()
	if f.relay != nil && applied > 0 {
		snapURL = fmt.Sprintf("%s?since=%d", snapURL, applied)
	}
	ctx, cancel := context.WithTimeout(f.ctx, followerBootstrapTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, snapURL, nil)
	if err != nil {
		return err
	}
	if f.binary {
		req.Header.Set("Accept", wire.ContentTypeSnapshot)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		_ = resp.Body.Close() // drained above; the response was already consumed
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("leader /snapshot: %s", httpErrorDetail(resp))
	}
	if resp.Header.Get("Content-Type") == wire.ContentTypeSnapshot {
		return f.bootstrapFrames(resp.Body, start)
	}
	var snap snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("leader /snapshot: decode: %w", err)
	}
	f.noteContact()
	batch := make([]RegistryEntry, len(snap.Entries))
	for i, e := range snap.Entries {
		batch[i] = e.Entry()
	}
	return f.finishBootstrap(start, snap.Seq, snap.Epoch, snap.Delta, snap.Removed, batch)
}

// bootstrapFrames decodes a binary /snapshot body incrementally: the
// wire.Reader holds a sliding window over the response instead of
// buffering the whole transfer, and each entry decodes straight into its
// final RegistryEntry — no intermediate JSON tree, no []ChangeEntry
// copy. For a large registry this is the difference between a bootstrap
// allocating a few hundred thousand decoder nodes and one allocating an
// entry slice plus the id strings it keeps.
func (f *FollowerRegistry) bootstrapFrames(body io.Reader, start time.Time) error {
	r := wire.NewReader(body, 0)
	hdr, err := r.ReadSnapshotHeader()
	if err != nil {
		return fmt.Errorf("leader /snapshot: frames: %w", err)
	}
	// Fence before decoding entries: a deposed leader's snapshot is
	// refused on its header, not after streaming its whole registry.
	if own := f.epoch(); hdr.Epoch < own {
		f.rejectedStale.Add(1)
		return fmt.Errorf("%w (/snapshot epoch %d < local %d)", errStaleEpoch, hdr.Epoch, own)
	}
	capHint := hdr.EntryCount
	if capHint > 1<<16 {
		capHint = 1 << 16 // never size an allocation by an unverified header field
	}
	batch := make([]RegistryEntry, 0, capHint)
	for i := uint64(0); i < hdr.EntryCount; i++ {
		// A fresh Frame per entry: ReadFrame reuses backing storage, and
		// the decoded strings outlive the loop inside the batch.
		var fr wire.Frame
		if err := r.ReadFrame(&fr); err != nil {
			return fmt.Errorf("leader /snapshot: entry %d/%d: %w", i+1, hdr.EntryCount, err)
		}
		if fr.Op != wire.OpUpsert {
			return fmt.Errorf("leader /snapshot: entry %d/%d has op %d, want upsert", i+1, hdr.EntryCount, fr.Op)
		}
		batch = append(batch, RegistryEntry{
			ID:        fr.ID,
			Coord:     fr.Coord,
			Error:     fr.Error,
			UpdatedAt: time.Unix(0, fr.UpdatedAtNs),
			// The snapshot writer stamps the entry-level sequence onto the
			// frame's own Seq; chained delta snapshots depend on it.
			Seq: fr.Seq,
		})
	}
	f.noteContact()
	return f.finishBootstrap(start, hdr.Seq, hdr.Epoch, hdr.Delta, hdr.Removed, batch)
}

// finishBootstrap applies a decoded snapshot — JSON or frames — to the
// local registry and restarts the relay at its sequence.
func (f *FollowerRegistry) finishBootstrap(start time.Time, seq, epoch uint64, delta bool, removed []string, batch []RegistryEntry) error {
	if own := f.epoch(); epoch < own {
		f.rejectedStale.Add(1)
		return fmt.Errorf("%w (/snapshot epoch %d < local %d)", errStaleEpoch, epoch, own)
	}

	f.bootMu.Lock()
	defer f.bootMu.Unlock()
	if delta {
		// Delta: untouched local entries are still correct. Removals
		// apply FIRST — an id removed and later re-upserted appears in
		// both lists, and the entry (the newer state) must win.
		for _, id := range removed {
			f.Registry.Remove(id)
		}
		f.deltaBootstraps.Add(1)
	}
	if err := f.Registry.UpsertBatch(batch); err != nil {
		return fmt.Errorf("apply snapshot: %w", err)
	}
	if !delta {
		live := make(map[string]struct{}, len(batch))
		for i := range batch {
			live[batch[i].ID] = struct{}{}
		}
		for _, e := range f.Registry.Snapshot() {
			if _, ok := live[e.ID]; !ok {
				f.Registry.Remove(e.ID)
			}
		}
	}
	f.applied.Store(seq)
	if seq > f.leaderSeq.Load() {
		f.leaderSeq.Store(seq)
	}
	switch {
	case f.relay == nil:
		f.relay = changefeed.New(f.relayBuf, seq)
	case delta:
		// The delta carried the removal knowledge for the jumped
		// range, so the relay keeps its tombstone depth: tiers below
		// this one can still repair with deltas of their own instead
		// of cascading full transfers.
		f.relay.AdvanceTo(seq, removed)
	default:
		f.relay.ResetTo(seq)
	}
	// Adopt the snapshot's epoch (validated >= ours above): a replica
	// bootstrapping across a promotion joins the new epoch here.
	f.relay.SetEpoch(epoch)
	f.bootstraps.Add(1)
	f.lastBootstrapNs.Store(time.Since(start).Nanoseconds())
	f.lastBootstrapDelta.Store(delta)
	return nil
}

// httpErrorDetail summarizes a non-200 response, including the JSON
// error field when the body carries one.
func httpErrorDetail(resp *http.Response) string {
	var body struct {
		Error string `json:"error"`
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		return fmt.Sprintf("%s (%s)", resp.Status, body.Error)
	}
	return resp.Status
}
