package netcoord

import (
	"fmt"

	"netcoord/internal/filter"
	"netcoord/internal/heuristic"
	"netcoord/internal/netsim"
	"netcoord/internal/sim"
	"netcoord/internal/trace"
	"netcoord/internal/vivaldi"
)

// SimulationConfig describes a synthetic what-if run: N nodes on a
// seeded wide-area network exchanging observations for a given duration,
// all using the same client configuration. Use it to evaluate filter and
// policy choices before deploying — the same methodology the paper used
// to pick its PlanetLab parameters.
type SimulationConfig struct {
	// Nodes is the population size (>= 4 for a meaningful topology).
	Nodes int
	// Seconds is the run length; each node observes one peer per
	// SampleEverySeconds.
	Seconds int
	// SampleEverySeconds is the per-node observation period (0 = 1).
	SampleEverySeconds int
	// Client configures every node's coordinate pipeline; zero value
	// means DefaultConfig.
	Client Config
	// Seed fixes the synthetic network and all randomness; runs with the
	// same config are bit-identical.
	Seed uint64
	// Churn spreads node joins over the first three quarters of the run
	// instead of starting everyone at once.
	Churn bool
	// Parallelism is the number of worker goroutines replaying the
	// trace: 0 uses runtime.GOMAXPROCS(0), 1 forces the sequential
	// engine, higher values pick an explicit worker count. The result is
	// bit-identical for every setting — the simulator's tick-barrier
	// design makes parallelism purely a wall-clock knob.
	Parallelism int
}

// SimulationResult summarizes a run, measured over its second half (the
// paper's convention, skipping start-up effects).
type SimulationResult struct {
	// Samples is the number of observations processed.
	Samples uint64
	// System and App summarize the two coordinate streams.
	System StreamSummary
	App    StreamSummary
}

// StreamSummary is the paper's metric set for one coordinate stream.
type StreamSummary struct {
	// MedianRelErr is the median over nodes of per-node median relative
	// error.
	MedianRelErr float64
	// P95RelErr is the median over nodes of per-node 95th-percentile
	// relative error.
	P95RelErr float64
	// MedianInstability is the median per-second aggregate coordinate
	// movement (ms/s).
	MedianInstability float64
	// UpdatesPerSecond is the mean fraction of nodes whose coordinate
	// changed per second.
	UpdatesPerSecond float64
}

// Simulate runs a synthetic evaluation of the given configuration.
func Simulate(cfg SimulationConfig) (SimulationResult, error) {
	if cfg.Nodes < 4 {
		return SimulationResult{}, fmt.Errorf("netcoord: simulate with %d nodes, want >= 4", cfg.Nodes)
	}
	if cfg.Seconds < 60 {
		return SimulationResult{}, fmt.Errorf("netcoord: simulate for %d s, want >= 60", cfg.Seconds)
	}
	if cfg.SampleEverySeconds <= 0 {
		cfg.SampleEverySeconds = 1
	}
	clientCfg := cfg.Client
	if clientCfg.Dimension == 0 && clientCfg.Policy == 0 {
		clientCfg = DefaultConfig()
	}
	resolved, vcfg, err := resolve(clientCfg)
	if err != nil {
		return SimulationResult{}, err
	}
	factory, err := buildFilterFactory(resolved)
	if err != nil {
		return SimulationResult{}, fmt.Errorf("netcoord: %w", err)
	}
	policyFactory := func(dim int) (heuristic.Policy, error) {
		c := resolved
		c.Dimension = dim
		return buildPolicy(c)
	}

	net, err := netsim.New(netsim.DefaultWideArea(cfg.Nodes, cfg.Seed))
	if err != nil {
		return SimulationResult{}, fmt.Errorf("netcoord: %w", err)
	}
	genCfg := trace.GeneratorConfig{
		IntervalTicks: uint64(cfg.SampleEverySeconds),
		DurationTicks: uint64(cfg.Seconds),
		Seed:          cfg.Seed + 1,
	}
	if cfg.Churn {
		genCfg.JoinSpreadTicks = uint64(cfg.Seconds) * 3 / 4
	}
	vcfg.Seed = cfg.Seed + 2
	runner, err := sim.NewRunner(sim.Config{
		Nodes:                  cfg.Nodes,
		Vivaldi:                vivaldiConfigFor(vcfg),
		Filter:                 filterFactoryFor(factory),
		Policy:                 policyFactory,
		Parallelism:            cfg.Parallelism, // 0 = GOMAXPROCS, resolved by Run
		ExpectedTicks:          uint64(cfg.Seconds),
		ExpectedSamplesPerNode: cfg.Seconds/cfg.SampleEverySeconds + 1,
	})
	if err != nil {
		return SimulationResult{}, fmt.Errorf("netcoord: %w", err)
	}
	// In-worker synthesis: each simulator worker generates its own
	// nodes' samples, so trace synthesis parallelizes with the compute
	// instead of bottlenecking on one prefetch goroutine. Results stay
	// bit-identical to the sequential engine for every Parallelism.
	if err := runner.RunGenerated(net, genCfg); err != nil {
		return SimulationResult{}, fmt.Errorf("netcoord: %w", err)
	}

	from, to := uint64(cfg.Seconds)/2, uint64(cfg.Seconds)
	sysSum, err := runner.Sys().Summarize(from, to)
	if err != nil {
		return SimulationResult{}, fmt.Errorf("netcoord: %w", err)
	}
	appSum, err := runner.App().Summarize(from, to)
	if err != nil {
		return SimulationResult{}, fmt.Errorf("netcoord: %w", err)
	}
	return SimulationResult{
		Samples: runner.Samples(),
		System: StreamSummary{
			MedianRelErr:      sysSum.MedianRelErr,
			P95RelErr:         sysSum.P95RelErrMedian,
			MedianInstability: sysSum.MedianInstability,
			UpdatesPerSecond:  sysSum.MeanUpdateFraction,
		},
		App: StreamSummary{
			MedianRelErr:      appSum.MedianRelErr,
			P95RelErr:         appSum.P95RelErrMedian,
			MedianInstability: appSum.MedianInstability,
			UpdatesPerSecond:  appSum.MeanUpdateFraction,
		},
	}, nil
}

// vivaldiConfigFor and filterFactoryFor exist to keep Simulate readable;
// they are identity adapters today but give the facade a seam if the
// internal types diverge from the public Config.
func vivaldiConfigFor(v vivaldi.Config) vivaldi.Config { return v }

func filterFactoryFor(f filter.Factory) filter.Factory { return f }
