package netcoord

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"netcoord/internal/xrand"
)

func testCoord(rng *xrand.Stream, dim int) Coordinate {
	c := Origin(dim)
	for i := range c.Vec {
		c.Vec[i] = rng.Uniform(0, 200)
	}
	if rng.Bernoulli(0.5) {
		c.Height = rng.Uniform(0, 20)
	}
	return c
}

func newTestRegistry(t *testing.T, cfg RegistryConfig) *Registry {
	t.Helper()
	r, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func TestRegistryBasics(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})

	if err := r.Upsert("a", c3(0, 0, 0), 0.2); err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert("b", c3(30, 0, 0), 0.3); err != nil {
		t.Fatal(err)
	}
	if err := r.Upsert("c", c3(0, 40, 0), 0.4); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}

	e, ok := r.Get("b")
	if !ok || e.Error != 0.3 || e.UpdatedAt.IsZero() {
		t.Fatalf("Get(b) = %+v, %v", e, ok)
	}

	got, err := r.Nearest(c3(1, 0, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("Nearest = %v, want a then b", got)
	}

	got, err = r.NearestTo("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("NearestTo(a) = %v, want b", got)
	}
	if _, err := r.NearestTo("nope", 1); err == nil {
		t.Fatal("NearestTo on unknown id succeeded")
	}

	within, err := r.Within(c3(0, 0, 0), 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) != 2 || within[0].ID != "a" || within[1].ID != "b" {
		t.Fatalf("Within(35) = %v, want a, b", within)
	}

	limited, err := r.WithinLimit(c3(0, 0, 0), 35, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 || limited[0].ID != "a" {
		t.Fatalf("WithinLimit(35, 1) = %v, want just a", limited)
	}
	if _, err := r.WithinLimit(c3(0, 0, 0), -1, 5); err == nil {
		t.Fatal("negative radius succeeded")
	}

	d, err := r.Estimate("a", "b")
	if err != nil || d != 30 {
		t.Fatalf("Estimate(a,b) = %v, %v, want 30", d, err)
	}
	if _, err := r.Estimate("a", "nope"); err == nil {
		t.Fatal("Estimate with unknown id succeeded")
	}

	if !r.Remove("b") {
		t.Fatal("Remove(b) = false")
	}
	if r.Remove("b") {
		t.Fatal("second Remove(b) = true")
	}
	if r.Len() != 2 {
		t.Fatalf("Len after remove = %d", r.Len())
	}

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "c" {
		t.Fatalf("Snapshot = %v", snap)
	}

	st := r.Stats()
	if st.Entries != 2 || st.Upserts != 3 || st.Removes != 1 || st.Queries != 4 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestRegistryValidation(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	if err := r.Upsert("", c3(0, 0, 0), 0); err == nil {
		t.Fatal("empty id succeeded")
	}
	if err := r.Upsert("x", Origin(2), 0); err == nil {
		t.Fatal("wrong-dimension upsert succeeded")
	}
	if _, err := r.Nearest(Origin(2), 1); err == nil {
		t.Fatal("wrong-dimension query succeeded")
	}
	if _, err := r.Nearest(Origin(3), 0); err == nil {
		t.Fatal("k=0 succeeded")
	}
	if _, err := NewRegistry(RegistryConfig{TTL: -time.Second}); err == nil {
		t.Fatal("negative TTL succeeded")
	}
}

// TestRegistryNearestMatchesOracle is the acceptance property test: on
// random workloads the sharded index-backed Nearest must agree exactly
// with the brute-force Nearest over a snapshot of the same entries.
func TestRegistryNearestMatchesOracle(t *testing.T) {
	rng := xrand.NewStream(7)
	r := newTestRegistry(t, RegistryConfig{Shards: 8})
	live := make(map[string]Coordinate)
	for op := 0; op < 3000; op++ {
		id := fmt.Sprintf("node-%d", rng.Intn(400))
		if rng.Bernoulli(0.25) && len(live) > 0 {
			delete(live, id)
			r.Remove(id)
		} else {
			c := testCoord(rng, 3)
			live[id] = c
			if err := r.Upsert(id, c, rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		if op%100 != 0 || len(live) == 0 {
			continue
		}
		cands := make([]Candidate, 0, len(live))
		for id, c := range live {
			cands = append(cands, Candidate{ID: id, Coord: c})
		}
		q := testCoord(rng, 3)
		for _, k := range []int{1, 8, 1000} {
			want, err := Nearest(q, cands, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Nearest(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("op %d k=%d: got %d results, want %d", op, k, len(got), len(want))
			}
			for i := range got {
				// Equal-distance ties may legitimately order differently
				// between the two implementations; distances must match
				// exactly, and ids must match except across exact ties.
				if got[i].EstimatedRTT != want[i].EstimatedRTT {
					t.Fatalf("op %d k=%d rank %d: rtt %v != oracle %v", op, k, i, got[i].EstimatedRTT, want[i].EstimatedRTT)
				}
				if got[i].ID != want[i].ID && !sameDistanceTie(want, got[i].EstimatedRTT, got[i].ID) {
					t.Fatalf("op %d k=%d rank %d: id %q != oracle %q", op, k, i, got[i].ID, want[i].ID)
				}
			}
		}
	}
}

// sameDistanceTie reports whether the oracle result set contains the
// given id at exactly the given distance (an acceptable tie reordering).
func sameDistanceTie(oracle []Ranked, rtt float64, id string) bool {
	for _, o := range oracle {
		if o.ID == id && o.EstimatedRTT == rtt {
			return true
		}
	}
	return false
}

// TestRegistryConcurrentStress hammers Upsert/Remove/Nearest/Within from
// many goroutines; run with -race this is the registry's
// thread-safety proof. Invariants are checked after the dust settles.
func TestRegistryConcurrentStress(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{Shards: 8})
	const (
		writers = 4
		readers = 4
		ops     = 2000
		idSpace = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewStream(seed)
			for i := 0; i < ops; i++ {
				id := fmt.Sprintf("node-%d", rng.Intn(idSpace))
				switch {
				case rng.Bernoulli(0.2):
					r.Remove(id)
				case rng.Bernoulli(0.1):
					batch := make([]RegistryEntry, 4)
					for j := range batch {
						batch[j] = RegistryEntry{
							ID:    fmt.Sprintf("node-%d", rng.Intn(idSpace)),
							Coord: testCoord(rng, 3),
						}
					}
					if err := r.UpsertBatch(batch); err != nil {
						t.Error(err)
						return
					}
				default:
					if err := r.Upsert(id, testCoord(rng, 3), rng.Float64()); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(uint64(w + 1))
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.NewStream(seed)
			for i := 0; i < ops; i++ {
				q := testCoord(rng, 3)
				if rng.Bernoulli(0.5) {
					res, err := r.Nearest(q, 1+rng.Intn(8))
					if err != nil {
						t.Error(err)
						return
					}
					for j := 1; j < len(res); j++ {
						if res[j].EstimatedRTT < res[j-1].EstimatedRTT {
							t.Errorf("Nearest results out of order: %v", res)
							return
						}
					}
				} else {
					if _, err := r.Within(q, rng.Uniform(0, 100)); err != nil {
						t.Error(err)
						return
					}
				}
				r.Len()
				r.Stats()
				r.Get(fmt.Sprintf("node-%d", rng.Intn(idSpace)))
			}
		}(uint64(100 + rd))
	}
	wg.Wait()

	// Post-stress invariant: every surviving entry is findable via
	// Nearest with a large k, and counts agree.
	snap := r.Snapshot()
	if len(snap) != r.Len() {
		t.Fatalf("Snapshot %d entries, Len %d", len(snap), r.Len())
	}
	if len(snap) == 0 {
		t.Fatal("stress left an empty registry; workload bug")
	}
	all, err := r.Nearest(Origin(3), len(snap)+10)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(snap) {
		t.Fatalf("Nearest(all) returned %d, want %d", len(all), len(snap))
	}
}

func TestRegistryTTLEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	r, err := NewRegistry(RegistryConfig{
		TTL: 10 * time.Second,
		// Long janitor interval: this test drives EvictStale directly.
		JanitorInterval: time.Hour,
		Clock:           clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if err := r.Upsert("old", c3(1, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	now = now.Add(8 * time.Second)
	mu.Unlock()
	if err := r.Upsert("fresh", c3(2, 0, 0), 0); err != nil {
		t.Fatal(err)
	}

	if n := r.EvictStale(); n != 0 {
		t.Fatalf("EvictStale before expiry = %d, want 0", n)
	}
	mu.Lock()
	now = now.Add(3 * time.Second) // "old" is now 11s stale, "fresh" 3s
	mu.Unlock()
	if n := r.EvictStale(); n != 1 {
		t.Fatalf("EvictStale = %d, want 1", n)
	}
	if _, ok := r.Get("old"); ok {
		t.Fatal("old survived eviction")
	}
	if _, ok := r.Get("fresh"); !ok {
		t.Fatal("fresh was evicted")
	}
	// The index must agree with the map after eviction.
	got, err := r.Nearest(c3(0, 0, 0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "fresh" {
		t.Fatalf("Nearest after eviction = %v", got)
	}
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("Stats.Evictions = %d, want 1", st.Evictions)
	}
}

// TestRegistryFeed wires an update channel into the registry the way a
// live Node's Updates channel would be.
func TestRegistryFeed(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	ch := make(chan NodeUpdate, 4)
	stop := r.Feed("replica-1", ch)
	defer stop()

	ch <- NodeUpdate{Coord: c3(5, 0, 0), At: time.Unix(1, 0), Error: 0.4}
	deadline := time.After(5 * time.Second)
	for {
		if e, ok := r.Get("replica-1"); ok {
			if e.Error != 0.4 {
				t.Fatalf("feed entry error = %v, want 0.4", e.Error)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("feed never upserted the update")
		case <-time.After(time.Millisecond):
		}
	}

	// An invalid update must not kill the feed, only count as an error.
	ch <- NodeUpdate{Coord: Origin(2)}
	ch <- NodeUpdate{Coord: c3(9, 0, 0)}
	for {
		if e, _ := r.Get("replica-1"); e.Coord.Vec[0] == 9 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("feed did not survive an invalid update")
		case <-time.After(time.Millisecond):
		}
	}
	if st := r.Stats(); st.FeedErrors != 1 {
		t.Fatalf("FeedErrors = %d, want 1", st.FeedErrors)
	}

	// Closing the channel ends the feed; Close must not hang.
	close(ch)
}

// TestRegistryRefreshDoesNotChurnIndex: a TTL-heartbeat workload
// re-upserting unchanged coordinates must not tombstone/reinsert in the
// spatial index — a pure refresh is a metadata write.
func TestRegistryRefreshDoesNotChurnIndex(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	for i := 0; i < 50; i++ {
		if err := r.Upsert("a", c3(1, 2, 3), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	batch := []RegistryEntry{{ID: "a", Coord: c3(1, 2, 3), Error: 0.2}}
	for i := 0; i < 50; i++ {
		if err := r.UpsertBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.IndexTombstones != 0 || st.IndexRebuilds != 0 {
		t.Fatalf("refreshes churned the index: %+v", st)
	}
	if st.Upserts != 100 {
		t.Fatalf("Upserts = %d, want 100", st.Upserts)
	}
	// The refresh still updates metadata.
	if e, _ := r.Get("a"); e.Error != 0.2 {
		t.Fatalf("Error after refresh = %v, want 0.2", e.Error)
	}
	// And a genuinely moved coordinate still reindexes.
	if err := r.Upsert("a", c3(9, 9, 9), 0.3); err != nil {
		t.Fatal(err)
	}
	got, err := r.Nearest(c3(9, 9, 9), 1)
	if err != nil || len(got) != 1 || got[0].EstimatedRTT != 0 {
		t.Fatalf("Nearest after move = %v, %v", got, err)
	}
}

// TestRegistryFeedAfterClose: Feed on a closed registry must be a
// no-op, and concurrent Feed/Close must not trip the WaitGroup.
func TestRegistryFeedAfterClose(t *testing.T) {
	r, err := NewRegistry(RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := make(chan NodeUpdate)
			stop := r.Feed(fmt.Sprintf("n%d", i), ch)
			stop()
		}(i)
	}
	r.Close()
	wg.Wait()

	ch := make(chan NodeUpdate, 1)
	ch <- NodeUpdate{Coord: c3(1, 2, 3)}
	stop := r.Feed("late", ch)
	stop()
	time.Sleep(10 * time.Millisecond)
	if _, ok := r.Get("late"); ok {
		t.Fatal("Feed after Close upserted an entry")
	}
}

func TestRegistryShardRounding(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{Shards: 5})
	if st := r.Stats(); st.Shards != 8 {
		t.Fatalf("Shards = %d, want 8 (rounded up)", st.Shards)
	}
}

func TestUpsertBatchBulkBuildsEmptyShards(t *testing.T) {
	// A batch into a fresh registry takes the bulk-build path (one
	// balanced construction per shard); the result must be queryable
	// exactly like incremental upserts, including in-batch duplicates
	// resolving last-wins, and later batches must extend it
	// incrementally without losing anything.
	r, err := NewRegistry(RegistryConfig{Dimension: 3, Shards: 4})
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	defer r.Close()
	batch := make([]RegistryEntry, 0, 101)
	for i := 0; i < 100; i++ {
		batch = append(batch, RegistryEntry{
			ID:    fmt.Sprintf("n%02d", i),
			Coord: c3(float64(i), float64((i*7)%50), float64((i*13)%50)),
		})
	}
	// Duplicate of n00 later in the batch: the final position must win.
	batch = append(batch, RegistryEntry{ID: "n00", Coord: c3(500, 500, 500)})
	if err := r.UpsertBatch(batch); err != nil {
		t.Fatalf("UpsertBatch: %v", err)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d, want 100", r.Len())
	}
	got, ok := r.Get("n00")
	if !ok || !got.Coord.Equal(c3(500, 500, 500)) {
		t.Fatalf("duplicate resolution: got %+v", got)
	}
	near, err := r.Nearest(c3(500, 500, 500), 1)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(near) != 1 || near[0].ID != "n00" {
		t.Fatalf("Nearest after bulk build = %v, want n00", near)
	}
	// Second batch lands on warm shards: incremental path.
	if err := r.UpsertBatch([]RegistryEntry{{ID: "late", Coord: c3(1, 1, 1)}}); err != nil {
		t.Fatalf("second UpsertBatch: %v", err)
	}
	if r.Len() != 101 {
		t.Fatalf("Len after second batch = %d, want 101", r.Len())
	}
	near, err = r.Nearest(c3(1, 1, 1), 1)
	if err != nil {
		t.Fatalf("Nearest: %v", err)
	}
	if len(near) != 1 || near[0].ID != "late" {
		t.Fatalf("Nearest after incremental batch = %v, want late", near)
	}
}
