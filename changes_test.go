package netcoord

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// applyChangeEvents replays wire events over a state map the way a
// follower does — per-id last-write-wins.
func applyChangeEvents(state map[string]RegistryEntry, evs []ChangeEvent) error {
	for _, ev := range evs {
		switch ev.Op {
		case ChangeUpsert:
			if ev.Entry == nil {
				return fmt.Errorf("upsert event %d without entry", ev.Seq)
			}
			state[ev.Entry.ID] = ev.Entry.Entry()
		case ChangeRemove:
			delete(state, ev.ID)
		case ChangeEvict:
			for _, id := range ev.IDs {
				delete(state, id)
			}
		default:
			return fmt.Errorf("unknown op %q", ev.Op)
		}
	}
	return nil
}

// assertStateMatchesRegistry compares a reconstructed state map with
// the registry's live contents, including exact UpdatedAt times.
func assertStateMatchesRegistry(t *testing.T, state map[string]RegistryEntry, reg *Registry) {
	t.Helper()
	live := reg.Snapshot()
	if len(live) != len(state) {
		t.Fatalf("reconstructed %d entries, live registry has %d", len(state), len(live))
	}
	for _, e := range live {
		got, ok := state[e.ID]
		if !ok {
			t.Fatalf("live entry %q missing from reconstruction", e.ID)
		}
		if !got.Coord.Equal(e.Coord) || got.Error != e.Error {
			t.Fatalf("entry %q mismatch: got %+v, live %+v", e.ID, got, e)
		}
		if got.UpdatedAt.UnixNano() != e.UpdatedAt.UnixNano() {
			t.Fatalf("entry %q UpdatedAt drifted: got %v, live %v", e.ID, got.UpdatedAt, e.UpdatedAt)
		}
	}
}

func TestChangeStreamDisabledByDefault(t *testing.T) {
	r := newTestRegistry(t, RegistryConfig{})
	if err := r.Upsert("a", c3(1, 0, 0), 0); err != nil {
		t.Fatalf("Upsert: %v", err)
	}
	if got := r.ChangeSeq(); got != 0 {
		t.Fatalf("ChangeSeq on disabled stream = %d", got)
	}
	if _, err := r.ChangesSince(0, 0); !errors.Is(err, ErrChangeStreamDisabled) {
		t.Fatalf("ChangesSince err = %v, want ErrChangeStreamDisabled", err)
	}
	if _, err := r.SubscribeChanges(8); !errors.Is(err, ErrChangeStreamDisabled) {
		t.Fatalf("SubscribeChanges err = %v, want ErrChangeStreamDisabled", err)
	}
	if st := r.ChangeStreamStats(); st.Enabled {
		t.Fatal("stats claim the stream is enabled")
	}
}

func TestChangeStreamSequencesEveryMutation(t *testing.T) {
	// Acceptance: zero missed events across 10k mutations — a
	// subscriber with room for everything sees a dense, gap-free
	// sequence covering every applied upsert and remove, and replaying
	// them reconstructs the registry exactly.
	const mutations = 10_000
	r := newTestRegistry(t, RegistryConfig{ChangeStreamBuffer: mutations + 64})
	sub, err := r.SubscribeChanges(mutations + 64)
	if err != nil {
		t.Fatalf("SubscribeChanges: %v", err)
	}
	defer sub.Close()

	rng := rand.New(rand.NewSource(42))
	applied := uint64(0)
	for applied < mutations {
		if rng.Intn(5) == 0 {
			// Remove publishes only when something was actually deleted.
			if r.Remove(fmt.Sprintf("n%04d", rng.Intn(2000))) {
				applied++
			}
		} else {
			if err := r.Upsert(fmt.Sprintf("n%04d", rng.Intn(2000)), c3(rng.Float64()*100, rng.Float64()*100, 0), 0.1); err != nil {
				t.Fatalf("Upsert: %v", err)
			}
			applied++
		}
	}
	finalSeq := r.ChangeSeq()
	if finalSeq != applied {
		t.Fatalf("ChangeSeq = %d, want %d (every applied mutation sequenced exactly once)", finalSeq, applied)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("subscriber dropped %d events despite sufficient buffer", sub.Dropped())
	}

	state := make(map[string]RegistryEntry)
	var got []ChangeEvent
	var prev uint64
	for prev < finalSeq {
		select {
		case ev := <-sub.C():
			// Delivery may collapse a superseded same-id upsert, but every
			// such gap is labelled on the survivor; anything unexplained by
			// the label is loss. The survivor carries the final state, so
			// replay below still reconstructs the registry exactly.
			if prev+1+ev.Coalesced != ev.Seq {
				t.Fatalf("unexplained gap: event %d after %d (coalesced label %d)", ev.Seq, prev, ev.Coalesced)
			}
			prev = ev.Seq
			got = append(got, ev)
		case <-time.After(5 * time.Second):
			t.Fatalf("subscriber starved at seq %d/%d", prev, finalSeq)
		}
	}
	if err := applyChangeEvents(state, got); err != nil {
		t.Fatal(err)
	}
	assertStateMatchesRegistry(t, state, r)
}

func TestResumedSubscriberReconstructsLiveState(t *testing.T) {
	// Property behind follower bootstrap: SnapshotWithSeq taken WHILE
	// mutations race, plus ChangesSince(seq) once they stop, equals the
	// live registry exactly — the snapshot is a superset of the stream
	// position and replay is idempotent.
	r := newTestRegistry(t, RegistryConfig{ChangeStreamBuffer: 1 << 16})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("w%d-%03d", w, rng.Intn(300))
				if i%7 == 3 {
					r.Remove(id)
				} else {
					_ = r.Upsert(id, c3(rng.Float64()*100, rng.Float64()*100, rng.Float64()*10), 0.2)
				}
			}
		}(w)
	}
	time.Sleep(20 * time.Millisecond)
	entries, seq := r.SnapshotWithSeq() // mid-storm bootstrap
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	state := make(map[string]RegistryEntry, len(entries))
	for _, e := range entries {
		state[e.ID] = e
	}
	evs, err := r.ChangesSince(seq, 0)
	if err != nil {
		t.Fatalf("ChangesSince(%d): %v", seq, err)
	}
	if err := applyChangeEvents(state, evs); err != nil {
		t.Fatal(err)
	}
	assertStateMatchesRegistry(t, state, r)
}

func TestEvictionsArePublishedWithIDs(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	r := newTestRegistry(t, RegistryConfig{
		TTL:                time.Hour,
		JanitorInterval:    24 * time.Hour, // sweep manually
		Clock:              clock,
		ChangeStreamBuffer: 128,
	})
	for i := 0; i < 10; i++ {
		if err := r.Upsert(fmt.Sprintf("old%d", i), c3(float64(i), 0, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	offset.Store(int64(2 * time.Hour))
	for i := 0; i < 3; i++ {
		if err := r.Upsert(fmt.Sprintf("fresh%d", i), c3(float64(i), 5, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	if n := r.EvictStale(); n != 10 {
		t.Fatalf("evicted %d, want 10", n)
	}
	evs, err := r.ChangesSince(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	evicted := make(map[string]bool)
	for _, ev := range evs {
		if ev.Op == ChangeEvict {
			for _, id := range ev.IDs {
				evicted[id] = true
			}
		}
	}
	if len(evicted) != 10 {
		t.Fatalf("evict events carry %d ids, want 10", len(evicted))
	}
	state := make(map[string]RegistryEntry)
	if err := applyChangeEvents(state, evs); err != nil {
		t.Fatal(err)
	}
	assertStateMatchesRegistry(t, state, r)
}

func TestConcurrentWatchStress(t *testing.T) {
	// Satellite acceptance: subscribers attach and detach while
	// upserts, removes, and TTL evictions run, under -race. Every
	// subscriber must observe strictly increasing sequences; the
	// long-lived auditor must see a dense stream.
	r := newTestRegistry(t, RegistryConfig{
		TTL:                time.Millisecond,
		JanitorInterval:    time.Millisecond,
		ChangeStreamBuffer: 1 << 15,
	})
	audit, err := r.SubscribeChanges(1 << 15)
	if err != nil {
		t.Fatal(err)
	}
	defer audit.Close()

	// Each writer performs a fixed op count so total events stay well
	// inside the auditor's buffer on any machine speed: 3×3000 writer
	// ops plus at most one eviction per upsert bounds the stream below
	// 2^15 even before the churning subscribers stop reading.
	const opsPerWriter = 3000
	stop := make(chan struct{})
	var writers, wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < opsPerWriter; i++ {
				id := fmt.Sprintf("s%d-%02d", w, rng.Intn(50))
				if i%5 == 4 {
					r.Remove(id)
				} else {
					_ = r.Upsert(id, c3(rng.Float64()*50, rng.Float64()*50, 0), 0)
				}
			}
		}(w)
	}
	var badOrder atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sub, err := r.SubscribeChanges(4) // deliberately tiny: overflow must be safe
				if err != nil {
					return
				}
				prev := sub.JoinSeq()
				for i := 0; i < 64; i++ {
					select {
					case ev, ok := <-sub.C():
						if !ok {
							sub.Close()
							return
						}
						if ev.Seq <= prev {
							badOrder.Store(true)
						}
						prev = ev.Seq
					case <-stop:
						sub.Close()
						return
					default:
					}
				}
				sub.Close()
			}
		}()
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if badOrder.Load() {
		t.Fatal("a subscriber observed non-increasing sequences")
	}

	// The auditor (big buffer) must lose nothing: every sequence gap it
	// sees must be exactly explained by a coalesce label.
	finalSeq := r.ChangeSeq()
	if audit.Dropped() != 0 {
		t.Fatalf("auditor dropped %d events; raise the buffer", audit.Dropped())
	}
	var prev uint64
	for prev < finalSeq {
		select {
		case ev := <-audit.C():
			if prev+1+ev.Coalesced != ev.Seq {
				t.Fatalf("auditor saw unexplained gap: %d after %d (coalesced label %d)", ev.Seq, prev, ev.Coalesced)
			}
			prev = ev.Seq
		case <-time.After(5 * time.Second):
			t.Fatalf("auditor starved at seq %d/%d", prev, finalSeq)
		}
	}
	st := r.ChangeStreamStats()
	if !st.Enabled || st.Seq != finalSeq {
		t.Fatalf("stream stats inconsistent: %+v (want seq %d)", st, finalSeq)
	}
}

func TestPersistentChangesSinceFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{ChangeStreamBuffer: 4}) // tiny ring: force WAL reads
	defer p.Close()
	for i := 0; i < 100; i++ {
		if err := p.Upsert(fmt.Sprintf("n%03d", i), c3(float64(i), 0, 0), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	p.Remove("n000")

	// The ring holds only the last 4 events; resuming from 0 must be
	// served from the WAL, losslessly.
	if _, err := p.Registry.ChangesSince(0, 0); !errors.Is(err, ErrChangeHistoryTruncated) {
		t.Fatalf("ring-only ChangesSince err = %v, want truncation", err)
	}
	evs, err := p.ChangesSince(0, 0)
	if err != nil {
		t.Fatalf("WAL-backed ChangesSince: %v", err)
	}
	if len(evs) != 101 {
		t.Fatalf("replayed %d events, want 101", len(evs))
	}
	state := make(map[string]RegistryEntry)
	if err := applyChangeEvents(state, evs); err != nil {
		t.Fatal(err)
	}
	assertStateMatchesRegistry(t, state, p.Registry)

	// Pagination across the ring/WAL boundary: fetch in pages of 7 and
	// arrive at the same state.
	state = make(map[string]RegistryEntry)
	since := uint64(0)
	for {
		page, err := p.ChangesSince(since, 7)
		if err != nil {
			t.Fatalf("page since %d: %v", since, err)
		}
		if len(page) == 0 {
			break
		}
		if err := applyChangeEvents(state, page); err != nil {
			t.Fatal(err)
		}
		since = page[len(page)-1].Seq
	}
	assertStateMatchesRegistry(t, state, p.Registry)

	// Compaction raises the history floor: pre-floor resume points are
	// gone for good and must say so.
	if err := p.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	floor := p.ChangeSeq()
	if _, err := p.ChangesSince(0, 0); !errors.Is(err, ErrChangeHistoryTruncated) {
		t.Fatalf("post-compaction ChangesSince(0) err = %v, want truncation", err)
	}
	if evs, err := p.ChangesSince(floor, 0); err != nil || len(evs) != 0 {
		t.Fatalf("ChangesSince(floor) = %d events, err %v; want empty, nil", len(evs), err)
	}
}

func TestChangeSeqContinuesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	p := openTestPR(t, dir, RegistryConfig{})
	for i := 0; i < 10; i++ {
		if err := p.Upsert(fmt.Sprintf("n%d", i), c3(float64(i), 0, 0), 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.ChangeSeq(); got != 10 {
		t.Fatalf("ChangeSeq = %d, want 10", got)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	p2 := openTestPR(t, dir, RegistryConfig{})
	defer p2.Close()
	if got := p2.ChangeSeq(); got != 10 {
		t.Fatalf("recovered ChangeSeq = %d, want 10 (sequences must survive restarts)", got)
	}
	if err := p2.Upsert("n10", c3(10, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if got := p2.ChangeSeq(); got != 11 {
		t.Fatalf("post-restart mutation seq = %d, want 11 (no reuse)", got)
	}
	// And the WAL records the continued sequence: resume from 10 yields
	// exactly the one new event.
	evs, err := p2.ChangesSince(10, 0)
	if err != nil || len(evs) != 1 || evs[0].Seq != 11 {
		t.Fatalf("ChangesSince(10) = %+v, %v; want the seq-11 upsert", evs, err)
	}
}

func TestCompactionTriggersOnWALGrowth(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPersistentRegistry(PersistentRegistryConfig{
		Registry:         RegistryConfig{},
		Dir:              dir,
		SnapshotInterval: time.Hour, // the timer will never fire in this test
		CompactWALBytes:  8 << 10,   // ~8KiB: a small storm crosses it
		NoSync:           true,
	})
	if err != nil {
		t.Fatalf("OpenPersistentRegistry: %v", err)
	}
	defer p.Close()
	for i := 0; i < 2000; i++ {
		if err := p.Upsert(fmt.Sprintf("storm-%04d", i%500), c3(float64(i%97), float64(i%89), 0), 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := p.PersistStats()
		if st.CompactReasons["wal-bytes"] > 0 {
			if st.LastCompactReason != "wal-bytes" {
				t.Fatalf("LastCompactReason = %q, want wal-bytes", st.LastCompactReason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("WAL growth never triggered a compaction: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
