package netcoord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"netcoord/internal/changefeed"
)

// DefaultChangeStreamBuffer is the change-stream ring size used when a
// component that requires the stream (PersistentRegistry, ncserve) is
// built without an explicit RegistryConfig.ChangeStreamBuffer.
const DefaultChangeStreamBuffer = 4096

// ErrChangeStreamDisabled is returned by change-stream methods on a
// registry built without RegistryConfig.ChangeStreamBuffer.
var ErrChangeStreamDisabled = errors.New("netcoord: change stream disabled (set RegistryConfig.ChangeStreamBuffer)")

// ErrChangeHistoryTruncated is returned by ChangesSince when the
// requested resume point is older than the retained history — the
// in-memory ring for a plain Registry, the ring plus the WAL for a
// PersistentRegistry. The consumer must re-bootstrap from a snapshot
// (SnapshotWithSeq, or ncserve's /snapshot) instead of resuming.
var ErrChangeHistoryTruncated = errors.New("netcoord: change history truncated; re-bootstrap from a snapshot")

// Change-stream operation names, as carried on the wire.
const (
	// ChangeUpsert inserts or refreshes the event's Entry.
	ChangeUpsert = "upsert"
	// ChangeRemove deletes the event's ID.
	ChangeRemove = "remove"
	// ChangeEvict deletes every id in the event's IDs (TTL eviction).
	ChangeEvict = "evict"
)

// ChangeEntry is the wire form of a registry entry inside a change
// event or a snapshot. UpdatedAt travels as Unix nanoseconds so a
// replica reconstructs the exact timestamp (TTL eviction stays correct
// after a follower is promoted), unhurt by textual time round-trips.
type ChangeEntry struct {
	ID                string     `json:"id"`
	Coord             Coordinate `json:"coord"`
	Error             float64    `json:"error,omitempty"`
	UpdatedAtUnixNano int64      `json:"updated_at_unix_nano"`
	// Seq is the sequence of the mutation that produced this entry
	// state. Snapshot bodies carry it so replicas preserve per-entry
	// sequences (delta snapshots depend on them); inside a ChangeEvent
	// it is omitted — the event's own Seq is the same number.
	Seq uint64 `json:"seq,omitempty"`
}

// Entry converts the wire form back to a registry entry.
func (e ChangeEntry) Entry() RegistryEntry {
	return RegistryEntry{
		ID:        e.ID,
		Coord:     e.Coord,
		Error:     e.Error,
		UpdatedAt: time.Unix(0, e.UpdatedAtUnixNano),
		Seq:       e.Seq,
	}
}

// toChangeEntry builds the wire form of a registry entry for a change
// event (the entry-level Seq stays zero; the event carries it).
func toChangeEntry(e RegistryEntry) ChangeEntry {
	return ChangeEntry{
		ID:                e.ID,
		Coord:             e.Coord,
		Error:             e.Error,
		UpdatedAtUnixNano: e.UpdatedAt.UnixNano(),
	}
}

// SnapshotEntry builds the wire form of a registry entry for a
// snapshot body, where — unlike in a change event — the per-entry
// sequence travels too, so replicas preserve it.
func SnapshotEntry(e RegistryEntry) ChangeEntry {
	out := toChangeEntry(e)
	out.Seq = e.Seq
	return out
}

// ChangeSource is the seam between a registry's change stream and
// anything that serves it: the read-then-subscribe bootstrap pair
// (SnapshotWithSeq), history replay (ChangesSince), live delivery
// (SubscribeChanges), and position/health (ChangeSeq, ChangeStreamStats).
//
// Three implementations exist, and a serving layer written against the
// interface works identically over all of them:
//
//   - *Registry serves its own in-memory stream (history is the ring).
//   - *PersistentRegistry extends history through the WAL on disk.
//   - *FollowerRegistry relays its leader's stream in the *leader's*
//     sequence space — so a replica re-serves /changes, /watch, and
//     /snapshot with the same sequence numbers the leader would, and
//     replicas stack into fan-out tiers (a follower can follow a
//     follower).
//
// The contract shared by all three: sequences are dense and monotonic
// within a stream's lifetime; SnapshotWithSeq's entries are a superset
// of the state at its seq (replaying events above seq over them
// converges exactly, because events are per-id last-write-wins);
// ChangesSince returns ErrChangeHistoryTruncated when the resume point
// predates retained history, and the consumer re-bootstraps from
// SnapshotWithSeq.
type ChangeSource interface {
	// ChangeSeq is the sequence of the most recent mutation.
	ChangeSeq() uint64
	// ChangeEpoch is the stream's current fencing epoch: bumped on
	// every promotion, persisted, and carried by every event, so
	// consumers can refuse a deposed leader's stale stream.
	ChangeEpoch() uint64
	// ChangesSince returns up to max events with sequence > since,
	// oldest first (max <= 0 means no limit).
	ChangesSince(since uint64, max int) ([]ChangeEvent, error)
	// SubscribeChanges attaches a bounded live subscriber.
	SubscribeChanges(buffer int) (*ChangeSubscription, error)
	// SnapshotWithSeq captures every live entry plus the stream
	// sequence to resume from.
	SnapshotWithSeq() ([]RegistryEntry, uint64)
	// DeltaSince captures the delta-snapshot triple in one call: the
	// live entries whose last mutation has sequence > since (provable
	// at any depth — entries carry their sequence), the ids removed
	// since then, and the sequence to resume from. ok is false when
	// removal-completeness cannot be proven (tombstone knowledge
	// truncated) and only a full snapshot is safe. One method rather
	// than three reads so an implementation can make the triple
	// atomic against state rewrites (a follower's re-bootstrap).
	DeltaSince(since uint64) (entries []RegistryEntry, removed []string, seq uint64, ok bool)
	// ChangeStreamStats snapshots the stream's operational counters.
	ChangeStreamStats() ChangeStreamStats
}

// The three registry flavors all satisfy ChangeSource.
var (
	_ ChangeSource = (*Registry)(nil)
	_ ChangeSource = (*PersistentRegistry)(nil)
	_ ChangeSource = (*FollowerRegistry)(nil)
)

// ChangeEvent is one sequenced registry mutation, in the form served
// over HTTP and consumed by followers. Sequence numbers are dense and
// monotonic: a consumer holding everything through sequence N resumes
// with since=N and misses nothing.
type ChangeEvent struct {
	// Seq is the event's position in the total mutation order.
	Seq uint64 `json:"seq"`
	// Op is ChangeUpsert, ChangeRemove, or ChangeEvict.
	Op string `json:"op"`
	// Entry is set for upserts.
	Entry *ChangeEntry `json:"entry,omitempty"`
	// ID is set for removes.
	ID string `json:"id,omitempty"`
	// IDs is set for evictions.
	IDs []string `json:"ids,omitempty"`
	// PubNs is the Unix-nanosecond wall-clock time the event was first
	// published at the stream's origin (the leader). It travels through
	// every relay tier unchanged, so any consumer can measure true
	// end-to-end propagation lag as now-PubNs. Zero means unknown
	// (events replayed from the WAL carry no stamp) — skip lag
	// measurement rather than fabricate one.
	PubNs int64 `json:"pub_ns,omitempty"`
	// Epoch is the fencing epoch the event was published under. A
	// promotion bumps the stream's epoch, so events a deposed leader
	// keeps writing carry a lower epoch than the promoted stream and
	// are rejected by every consumer instead of forking replica state.
	// Zero is the unfenced pre-failover epoch (also what streams from
	// older servers carry).
	Epoch uint64 `json:"epoch,omitempty"`
	// Coalesced labels the sequence gap immediately before this event on
	// a live subscription: that many earlier events were collapsed away
	// before delivery as superseded same-id upserts (a heartbeat storm
	// folding to one event per node). A consumer checks
	// prev.Seq + 1 + Coalesced == ev.Seq to tell benign collapse from
	// real loss. Always zero on ChangesSince reads — history is dense —
	// so followers and catch-up consumers never see a labelled gap.
	Coalesced uint64 `json:"coalesced,omitempty"`

	// enc is the event's shared encode cache, carried over from the
	// feed: every serialization of this event (JSON for one subscriber,
	// a binary frame for another, a relay forwarding it downstream) is
	// built at most once and shared by every copy. nil on hand-built
	// events, which simply encode from scratch.
	enc *changefeed.Encoded
}

// fromFeedEvent converts an internal feed event to the wire form.
// When the event carries an encode cache, the converted form (one
// decoded view shared by every consumer of this event) is built once
// and cached alongside the serializations: sixty-four subscribers
// fanning out one event pay one conversion, not sixty-four.
func fromFeedEvent(ev *changefeed.Event) ChangeEvent {
	if ev.Enc == nil {
		var w encodedWire
		fillChangeEvent(&w, ev)
		out := w.ev
		out.Coalesced = ev.Coalesced
		return out
	}
	v, _ := ev.Enc.View().(*encodedWire)
	if v == nil {
		v = &encodedWire{}
		fillChangeEvent(v, ev)
		v.ev.enc = ev.Enc
		// Racing builders store equivalent views; last write wins and
		// the loser becomes garbage.
		ev.Enc.StoreView(v)
	}
	out := v.ev
	out.Coalesced = ev.Coalesced
	return out
}

// encodedWire is the cached wire-form view of one feed event: the
// event plus the backing store its Entry pointer references, so one
// heap object carries both. Immutable once stored (fromFeedEvent
// copies the event out by value; Entry is shared and never written).
type encodedWire struct {
	ev    ChangeEvent
	entry ChangeEntry
}

// fillChangeEvent converts ev into w (Coalesced excluded — it is
// per-delivery, not part of the event identity the cache keys on).
func fillChangeEvent(w *encodedWire, ev *changefeed.Event) {
	w.ev.Seq, w.ev.PubNs, w.ev.Epoch = ev.Seq, ev.PubNs, ev.Epoch
	switch ev.Op {
	case changefeed.OpUpsert:
		w.ev.Op = ChangeUpsert
		w.entry = ChangeEntry{
			ID:                ev.Entry.ID,
			Coord:             ev.Entry.Coord,
			Error:             ev.Entry.Error,
			UpdatedAtUnixNano: ev.Entry.UpdatedAt.UnixNano(),
		}
		w.ev.Entry = &w.entry
	case changefeed.OpRemove:
		w.ev.Op = ChangeRemove
		w.ev.ID = ev.ID
	case changefeed.OpEvict:
		w.ev.Op = ChangeEvict
		w.ev.IDs = ev.IDs
	}
}

// toFeedEvent converts a wire event back to the internal feed form —
// the relay direction: a follower republishes its leader's events into
// its own feed under the leader's sequence numbers.
func toFeedEvent(ev ChangeEvent) changefeed.Event {
	out := changefeed.Event{Seq: ev.Seq, PubNs: ev.PubNs, Epoch: ev.Epoch, Enc: ev.enc}
	switch ev.Op {
	case ChangeUpsert:
		out.Op = changefeed.OpUpsert
		if ev.Entry != nil {
			e := ev.Entry.Entry()
			out.Entry = changefeed.Entry{ID: e.ID, Coord: e.Coord, Error: e.Error, UpdatedAt: e.UpdatedAt}
		}
	case ChangeRemove:
		out.Op = changefeed.OpRemove
		out.ID = ev.ID
	case ChangeEvict:
		out.Op = changefeed.OpEvict
		out.IDs = ev.IDs
	}
	return out
}

// ChangeStreamStats is an operational snapshot of a registry's change
// stream.
type ChangeStreamStats struct {
	// Enabled reports whether the stream exists at all.
	Enabled bool `json:"enabled"`
	// Seq is the last assigned sequence number.
	Seq uint64 `json:"seq"`
	// Published counts events published by this process.
	Published uint64 `json:"published"`
	// Subscribers is the live subscription count.
	Subscribers int `json:"subscribers"`
	// Overflows counts events dropped to full subscriber buffers.
	Overflows uint64 `json:"overflows"`
	// Coalesced counts events collapsed away before subscriber delivery
	// because a newer upsert of the same id superseded them while still
	// pending. Unlike Overflows these are not loss: the surviving event
	// carries the final state and labels the gap (ChangeEvent.Coalesced).
	Coalesced uint64 `json:"coalesced"`
	// OldestSeq is the oldest event still in the catch-up ring.
	OldestSeq uint64 `json:"oldest_seq"`
	// RingLen is the ring's current occupancy (live events buffered);
	// RingCap is its capacity.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`
	// TombLen/TombCap are the tombstone ring's occupancy and capacity,
	// and TombFloor is the sequence below which removal knowledge is
	// incomplete (delta snapshots from at or below it must fall back to
	// full transfers).
	TombLen   int    `json:"tomb_len"`
	TombCap   int    `json:"tomb_cap"`
	TombFloor uint64 `json:"tomb_floor"`
	// Epoch is the stream's current fencing epoch; RejectedStaleEpoch
	// counts events refused because they carried a lower one (a deposed
	// leader still writing after a promotion).
	Epoch              uint64 `json:"epoch"`
	RejectedStaleEpoch uint64 `json:"rejected_stale_epoch"`
}

// ChangeSeq returns the sequence number of the most recent mutation
// (0 if nothing has mutated), or 0 with the stream disabled. A client
// that reads state and then subscribes with since=ChangeSeq observes
// every later mutation with no gap — the race-free read-then-follow
// handshake.
func (r *Registry) ChangeSeq() uint64 {
	feed := r.getFeed()
	if feed == nil {
		return 0
	}
	return feed.Seq()
}

// ChangeEpoch returns the stream's current fencing epoch (0 with the
// stream disabled, or before any promotion has ever happened).
func (r *Registry) ChangeEpoch() uint64 {
	feed := r.getFeed()
	if feed == nil {
		return 0
	}
	return feed.Epoch()
}

// ChangeStreamStats snapshots the change stream's counters; Enabled is
// false (and the rest zero) when the stream is disabled.
func (r *Registry) ChangeStreamStats() ChangeStreamStats {
	return feedStreamStats(r.getFeed())
}

// feedStreamStats converts a feed's counters to the public form;
// shared by the registry's own stream and a follower's relay.
func feedStreamStats(feed *changefeed.Feed) ChangeStreamStats {
	if feed == nil {
		return ChangeStreamStats{}
	}
	st := feed.Stats()
	return ChangeStreamStats{
		Enabled:            true,
		Seq:                st.Seq,
		Published:          st.Published,
		Subscribers:        st.Subscribers,
		Overflows:          st.Overflows,
		Coalesced:          st.Coalesced,
		OldestSeq:          st.OldestSeq,
		RingLen:            st.RingLen,
		RingCap:            st.RingCap,
		TombLen:            st.TombLen,
		TombCap:            st.TombCap,
		TombFloor:          st.TombFloor,
		Epoch:              st.Epoch,
		RejectedStaleEpoch: st.RejectedStaleEpoch,
	}
}

// ChangesSince returns up to max events with sequence > since, oldest
// first, from the in-memory ring (max <= 0 means no limit). It returns
// ErrChangeHistoryTruncated when the ring no longer reaches back to
// since+1; a PersistentRegistry extends this with WAL replay before
// giving up — use its method when one is available.
func (r *Registry) ChangesSince(since uint64, max int) ([]ChangeEvent, error) {
	feed := r.getFeed()
	if feed == nil {
		return nil, ErrChangeStreamDisabled
	}
	return feedChangesSince(feed, since, max, "ring")
}

// feedChangesSince serves a resume from a feed's ring in wire form,
// mapping truncation to the public error; shared by the registry's own
// stream and a follower's relay (label distinguishes them in the
// message).
func feedChangesSince(feed *changefeed.Feed, since uint64, max int, label string) ([]ChangeEvent, error) {
	evs, err := feed.Since(since, max)
	if errors.Is(err, changefeed.ErrTruncated) {
		return nil, fmt.Errorf("%w (%s starts at %d, requested %d)", ErrChangeHistoryTruncated, label, feed.OldestBuffered(), since+1)
	}
	if err != nil {
		return nil, err
	}
	out := make([]ChangeEvent, len(evs))
	for i := range evs {
		out[i] = fromFeedEvent(&evs[i])
	}
	return out, nil
}

// SnapshotWithSeq captures every live entry together with the stream
// sequence read immediately before the capture — the bootstrap pair
// for a replica: apply the entries, then resume the stream with
// since=seq. The entries are a superset of the state at seq, and
// replaying events above seq over them converges exactly because
// events are per-id last-write-wins.
func (r *Registry) SnapshotWithSeq() ([]RegistryEntry, uint64) {
	seq := r.ChangeSeq()
	return r.Snapshot(), seq
}

// EntriesChangedSince returns every live entry whose last mutation has
// sequence > since, sorted by id. Unlike replaying history, this scans
// current state — O(n) in registry size but provable no matter how far
// back since reaches, because each entry carries the sequence that
// produced it. Paired with RemovedSince it forms the delta-snapshot
// bootstrap: apply the removals, then these entries, then resume the
// stream — the same superset-then-replay convergence as a full
// snapshot, transferring only what changed.
func (r *Registry) EntriesChangedSince(since uint64) []RegistryEntry {
	var out []RegistryEntry
	for _, s := range r.shards {
		s.mu.RLock()
		for _, e := range s.entries {
			if e.Seq > since {
				out = append(out, e)
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// RemovedSince lists the ids removed (or evicted) with sequence >
// since, and whether the list is provably complete. False means the
// tombstone ring has forgotten removals at or before since, and only a
// full snapshot can guarantee deleted entries do not survive on the
// consumer.
func (r *Registry) RemovedSince(since uint64) ([]string, bool) {
	feed := r.getFeed()
	if feed == nil {
		return nil, false
	}
	return feed.RemovedSince(since)
}

// DeltaSince assembles the delta-snapshot triple. Ordering makes it
// safe under concurrent mutation: seq first, then removals, then the
// changed live entries — anything mutated mid-read is delivered at its
// newest state (newer than seq) and the resuming stream replays its
// later events over it, the same superset-then-replay convergence
// SnapshotWithSeq gives.
func (r *Registry) DeltaSince(since uint64) (entries []RegistryEntry, removed []string, seq uint64, ok bool) {
	return assembleDelta(since, r.ChangeSeq(), r.RemovedSince, r.EntriesChangedSince)
}

// assembleDelta builds the delta-snapshot triple from a stream
// position, a removal source, and an entry scanner; shared by the
// registry's own stream and a follower's relay (which wraps it in its
// bootstrap lock so the triple is atomic against rewrites).
func assembleDelta(since, seq uint64, removedSince func(uint64) ([]string, bool), changedSince func(uint64) []RegistryEntry) ([]RegistryEntry, []string, uint64, bool) {
	if since > seq {
		return nil, nil, 0, false // a since from the future: don't guess
	}
	removed, ok := removedSince(since)
	if !ok {
		return nil, nil, 0, false
	}
	if removed == nil {
		removed = []string{}
	}
	return changedSince(since), removed, seq, true
}

// ChangeSubscription delivers a registry's change events in sequence
// order. Receive from C; the channel closes when the subscription or
// the registry is closed. A subscriber that cannot keep up loses
// events rather than slowing mutations — detect the loss by a gap in
// Seq (or Dropped > 0) and repair it with ChangesSince.
type ChangeSubscription struct {
	inner     *changefeed.Subscription
	out       chan ChangeEvent
	closeOnce sync.Once
}

// SubscribeChanges attaches a subscriber buffering up to buffer events
// (minimum 1). The subscription observes every event with sequence >
// JoinSeq; fetch history at or before JoinSeq with ChangesSince — the
// split is what makes catch-up-then-follow race-free.
func (r *Registry) SubscribeChanges(buffer int) (*ChangeSubscription, error) {
	feed := r.getFeed()
	if feed == nil {
		return nil, ErrChangeStreamDisabled
	}
	return newChangeSubscription(feed, buffer), nil
}

// newChangeSubscription wraps a feed subscription in the public wire
// type; shared by the registry's own stream and a follower's relay.
//
// Delivery is a callback subscription (SubscribeFunc), not a forwarded
// channel: the feed's flusher converts each event to the wire form
// (cached per event — sixty-four subscribers pay one conversion) and
// drops it straight into this subscription's buffered channel. The
// earlier design forwarded an internal channel through a per-subscriber
// goroutine, which doubled the channel operations on every delivery and
// parked a goroutine per event; the sink keeps the fan-out at exactly
// one send and one receive per subscriber.
func newChangeSubscription(feed *changefeed.Feed, buffer int) *ChangeSubscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &ChangeSubscription{out: make(chan ChangeEvent, buffer)}
	s.inner = feed.SubscribeFunc(
		func(ev *changefeed.Event) bool {
			select {
			case s.out <- fromFeedEvent(ev):
				return true
			default:
				return false // full buffer: the feed counts the drop
			}
		},
		func() { s.closeOnce.Do(func() { close(s.out) }) },
	)
	return s
}

// C is the event channel; it closes after Close (or registry Close),
// once buffered events have been delivered.
func (s *ChangeSubscription) C() <-chan ChangeEvent { return s.out }

// JoinSeq is the stream sequence at attach time.
func (s *ChangeSubscription) JoinSeq() uint64 { return s.inner.JoinSeq() }

// MarkSignal declares this subscriber a pure wake signal (it only
// cares that the stream moved): buffer overflow then counts as neither
// subscriber loss nor a feed overflow, keeping those /stats metrics
// meaningful for consumers that actually read events.
func (s *ChangeSubscription) MarkSignal() { s.inner.MarkSignal() }

// Dropped counts events lost to a full buffer.
func (s *ChangeSubscription) Dropped() uint64 { return s.inner.Dropped() }

// Close detaches the subscription. Safe to call multiple times and
// from multiple goroutines.
func (s *ChangeSubscription) Close() {
	s.inner.Close()
}
