package netcoord

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"netcoord/internal/changefeed"
)

// DefaultChangeStreamBuffer is the change-stream ring size used when a
// component that requires the stream (PersistentRegistry, ncserve) is
// built without an explicit RegistryConfig.ChangeStreamBuffer.
const DefaultChangeStreamBuffer = 4096

// ErrChangeStreamDisabled is returned by change-stream methods on a
// registry built without RegistryConfig.ChangeStreamBuffer.
var ErrChangeStreamDisabled = errors.New("netcoord: change stream disabled (set RegistryConfig.ChangeStreamBuffer)")

// ErrChangeHistoryTruncated is returned by ChangesSince when the
// requested resume point is older than the retained history — the
// in-memory ring for a plain Registry, the ring plus the WAL for a
// PersistentRegistry. The consumer must re-bootstrap from a snapshot
// (SnapshotWithSeq, or ncserve's /snapshot) instead of resuming.
var ErrChangeHistoryTruncated = errors.New("netcoord: change history truncated; re-bootstrap from a snapshot")

// Change-stream operation names, as carried on the wire.
const (
	// ChangeUpsert inserts or refreshes the event's Entry.
	ChangeUpsert = "upsert"
	// ChangeRemove deletes the event's ID.
	ChangeRemove = "remove"
	// ChangeEvict deletes every id in the event's IDs (TTL eviction).
	ChangeEvict = "evict"
)

// ChangeEntry is the wire form of a registry entry inside a change
// event or a snapshot. UpdatedAt travels as Unix nanoseconds so a
// replica reconstructs the exact timestamp (TTL eviction stays correct
// after a follower is promoted), unhurt by textual time round-trips.
type ChangeEntry struct {
	ID                string     `json:"id"`
	Coord             Coordinate `json:"coord"`
	Error             float64    `json:"error,omitempty"`
	UpdatedAtUnixNano int64      `json:"updated_at_unix_nano"`
}

// Entry converts the wire form back to a registry entry.
func (e ChangeEntry) Entry() RegistryEntry {
	return RegistryEntry{
		ID:        e.ID,
		Coord:     e.Coord,
		Error:     e.Error,
		UpdatedAt: time.Unix(0, e.UpdatedAtUnixNano),
	}
}

// toChangeEntry builds the wire form of a registry entry.
func toChangeEntry(e RegistryEntry) ChangeEntry {
	return ChangeEntry{
		ID:                e.ID,
		Coord:             e.Coord,
		Error:             e.Error,
		UpdatedAtUnixNano: e.UpdatedAt.UnixNano(),
	}
}

// ChangeEvent is one sequenced registry mutation, in the form served
// over HTTP and consumed by followers. Sequence numbers are dense and
// monotonic: a consumer holding everything through sequence N resumes
// with since=N and misses nothing.
type ChangeEvent struct {
	// Seq is the event's position in the total mutation order.
	Seq uint64 `json:"seq"`
	// Op is ChangeUpsert, ChangeRemove, or ChangeEvict.
	Op string `json:"op"`
	// Entry is set for upserts.
	Entry *ChangeEntry `json:"entry,omitempty"`
	// ID is set for removes.
	ID string `json:"id,omitempty"`
	// IDs is set for evictions.
	IDs []string `json:"ids,omitempty"`
}

// fromFeedEvent converts an internal feed event to the wire form.
func fromFeedEvent(ev changefeed.Event) ChangeEvent {
	out := ChangeEvent{Seq: ev.Seq}
	switch ev.Op {
	case changefeed.OpUpsert:
		out.Op = ChangeUpsert
		entry := toChangeEntry(RegistryEntry{
			ID:        ev.Entry.ID,
			Coord:     ev.Entry.Coord,
			Error:     ev.Entry.Error,
			UpdatedAt: ev.Entry.UpdatedAt,
		})
		out.Entry = &entry
	case changefeed.OpRemove:
		out.Op = ChangeRemove
		out.ID = ev.ID
	case changefeed.OpEvict:
		out.Op = ChangeEvict
		out.IDs = ev.IDs
	}
	return out
}

// ChangeStreamStats is an operational snapshot of a registry's change
// stream.
type ChangeStreamStats struct {
	// Enabled reports whether the stream exists at all.
	Enabled bool `json:"enabled"`
	// Seq is the last assigned sequence number.
	Seq uint64 `json:"seq"`
	// Published counts events published by this process.
	Published uint64 `json:"published"`
	// Subscribers is the live subscription count.
	Subscribers int `json:"subscribers"`
	// Overflows counts events dropped to full subscriber buffers.
	Overflows uint64 `json:"overflows"`
	// OldestSeq is the oldest event still in the catch-up ring.
	OldestSeq uint64 `json:"oldest_seq"`
	// RingLen and RingCap describe the ring's fill.
	RingLen int `json:"ring_len"`
	RingCap int `json:"ring_cap"`
}

// ChangeSeq returns the sequence number of the most recent mutation
// (0 if nothing has mutated), or 0 with the stream disabled. A client
// that reads state and then subscribes with since=ChangeSeq observes
// every later mutation with no gap — the race-free read-then-follow
// handshake.
func (r *Registry) ChangeSeq() uint64 {
	if r.feed == nil {
		return 0
	}
	return r.feed.Seq()
}

// ChangeStreamStats snapshots the change stream's counters; Enabled is
// false (and the rest zero) when the stream is disabled.
func (r *Registry) ChangeStreamStats() ChangeStreamStats {
	if r.feed == nil {
		return ChangeStreamStats{}
	}
	st := r.feed.Stats()
	return ChangeStreamStats{
		Enabled:     true,
		Seq:         st.Seq,
		Published:   st.Published,
		Subscribers: st.Subscribers,
		Overflows:   st.Overflows,
		OldestSeq:   st.OldestSeq,
		RingLen:     st.RingLen,
		RingCap:     st.RingCap,
	}
}

// ChangesSince returns up to max events with sequence > since, oldest
// first, from the in-memory ring (max <= 0 means no limit). It returns
// ErrChangeHistoryTruncated when the ring no longer reaches back to
// since+1; a PersistentRegistry extends this with WAL replay before
// giving up — use its method when one is available.
func (r *Registry) ChangesSince(since uint64, max int) ([]ChangeEvent, error) {
	if r.feed == nil {
		return nil, ErrChangeStreamDisabled
	}
	evs, err := r.feed.Since(since, max)
	if errors.Is(err, changefeed.ErrTruncated) {
		return nil, fmt.Errorf("%w (ring starts at %d, requested %d)", ErrChangeHistoryTruncated, r.feed.OldestBuffered(), since+1)
	}
	if err != nil {
		return nil, err
	}
	out := make([]ChangeEvent, len(evs))
	for i, ev := range evs {
		out[i] = fromFeedEvent(ev)
	}
	return out, nil
}

// SnapshotWithSeq captures every live entry together with the stream
// sequence read immediately before the capture — the bootstrap pair
// for a replica: apply the entries, then resume the stream with
// since=seq. The entries are a superset of the state at seq, and
// replaying events above seq over them converges exactly because
// events are per-id last-write-wins.
func (r *Registry) SnapshotWithSeq() ([]RegistryEntry, uint64) {
	seq := r.ChangeSeq()
	return r.Snapshot(), seq
}

// ChangeSubscription delivers a registry's change events in sequence
// order. Receive from C; the channel closes when the subscription or
// the registry is closed. A subscriber that cannot keep up loses
// events rather than slowing mutations — detect the loss by a gap in
// Seq (or Dropped > 0) and repair it with ChangesSince.
type ChangeSubscription struct {
	inner     *changefeed.Subscription
	out       chan ChangeEvent
	done      chan struct{}
	closeOnce sync.Once
}

// SubscribeChanges attaches a subscriber buffering up to buffer events
// (minimum 1). The subscription observes every event with sequence >
// JoinSeq; fetch history at or before JoinSeq with ChangesSince — the
// split is what makes catch-up-then-follow race-free.
func (r *Registry) SubscribeChanges(buffer int) (*ChangeSubscription, error) {
	if r.feed == nil {
		return nil, ErrChangeStreamDisabled
	}
	if buffer < 1 {
		buffer = 1
	}
	s := &ChangeSubscription{
		inner: r.feed.Subscribe(buffer),
		out:   make(chan ChangeEvent, 1),
		done:  make(chan struct{}),
	}
	go s.forward()
	return s, nil
}

// forward converts internal events to the wire type. The inner channel
// carries the configured buffer; the outer channel only smooths the
// hand-off.
func (s *ChangeSubscription) forward() {
	defer close(s.out)
	for ev := range s.inner.C() {
		select {
		case s.out <- fromFeedEvent(ev):
		case <-s.done:
			return
		}
	}
}

// C is the event channel; it closes after Close (or registry Close),
// once buffered events have been delivered.
func (s *ChangeSubscription) C() <-chan ChangeEvent { return s.out }

// JoinSeq is the stream sequence at attach time.
func (s *ChangeSubscription) JoinSeq() uint64 { return s.inner.JoinSeq() }

// Dropped counts events lost to a full buffer.
func (s *ChangeSubscription) Dropped() uint64 { return s.inner.Dropped() }

// Close detaches the subscription. Safe to call multiple times and
// from multiple goroutines.
func (s *ChangeSubscription) Close() {
	s.inner.Close()
	s.closeOnce.Do(func() { close(s.done) })
}
